// Adaptive (sample-point) bandwidth kernel estimator.
//
// A fixed bandwidth compromises between dense regions (want small h) and
// sparse regions (want large h); the paper's skewed files expose exactly
// that tension. Silverman's adaptive estimator gives each sample its own
// bandwidth
//
//   h_i = h0 · (f̂_pilot(X_i) / g)^(−1/2),   g = geometric mean of f̂_pilot,
//
// so bumps narrow where data is dense and widen in the tails. The
// selectivity integral stays closed-form — it is the average of per-sample
// kernel CDF differences, each with its own h_i.
#ifndef SELEST_EST_ADAPTIVE_KERNEL_ESTIMATOR_H_
#define SELEST_EST_ADAPTIVE_KERNEL_ESTIMATOR_H_

#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/density/kernel.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

struct AdaptiveKernelOptions {
  // Base bandwidth h0; 0 means "normal scale rule".
  double base_bandwidth = 0.0;
  Kernel kernel = Kernel(KernelType::kEpanechnikov);
  // Sensitivity exponent in [0, 1]; 0.5 is Silverman's recommendation and
  // 0 recovers the fixed-bandwidth estimator.
  double sensitivity = 0.5;
  // Cap on h_i / h0, keeping tail bandwidths bounded.
  double max_widening = 10.0;
};

class AdaptiveKernelEstimator : public SelectivityEstimator {
 public:
  static StatusOr<AdaptiveKernelEstimator> Create(
      std::span<const double> sample, const Domain& domain,
      const AdaptiveKernelOptions& options);

  // O(log n + k): samples are sorted and the maximal bandwidth bounds the
  // scan window.
  double EstimateSelectivity(double a, double b) const override;
  size_t StorageBytes() const override;
  std::string name() const override;

  const std::vector<double>& bandwidths() const { return bandwidths_; }
  double base_bandwidth() const { return base_bandwidth_; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kAdaptiveKernel;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<AdaptiveKernelEstimator> DeserializeState(
      ByteReader& reader);

 private:
  AdaptiveKernelEstimator(std::vector<double> sorted,
                          std::vector<double> bandwidths, double max_bandwidth,
                          double base_bandwidth, Domain domain, Kernel kernel)
      : sorted_(std::move(sorted)),
        bandwidths_(std::move(bandwidths)),
        max_bandwidth_(max_bandwidth),
        base_bandwidth_(base_bandwidth),
        domain_(domain),
        kernel_(kernel) {}

  std::vector<double> sorted_;
  std::vector<double> bandwidths_;  // parallel to sorted_
  double max_bandwidth_;
  double base_bandwidth_;
  Domain domain_;
  Kernel kernel_;
};

}  // namespace selest

#endif  // SELEST_EST_ADAPTIVE_KERNEL_ESTIMATOR_H_
