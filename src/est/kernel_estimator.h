// Kernel selectivity estimator (§3.2, Algorithm 1).
//
// The estimate integrates the kernel density over the query range:
//
//   σ̂_K(a, b) = (1/n) Σ_i ∫_{(a−X_i)/h}^{(b−X_i)/h} K(t) dt
//             = (1/n) Σ_i [F((b−X_i)/h) − F((a−X_i)/h)]
//
// with F the kernel CDF. Samples deep inside the query contribute exactly 1
// and samples far outside contribute 0, which is the case split of Alg. 1;
// keeping the samples sorted turns the evaluation into two binary searches
// plus a scan of the O(k) fringe samples near the query endpoints — the
// O(log n + k) cost the paper attributes to a search-tree organization.
//
// Boundary handling follows §3.2.1: none, reflection, or Simonoff–Dong
// boundary kernels (the latter integrates the boundary strips by
// quadrature; see DESIGN.md).
#ifndef SELEST_EST_KERNEL_ESTIMATOR_H_
#define SELEST_EST_KERNEL_ESTIMATOR_H_

#include <optional>
#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/density/kde.h"
#include "src/density/kernel.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

struct KernelEstimatorOptions {
  // Bandwidth h (> 0). See src/smoothing for the rules that choose it.
  double bandwidth = 0.0;
  Kernel kernel = Kernel(KernelType::kEpanechnikov);
  BoundaryPolicy boundary = BoundaryPolicy::kNone;
  // Resolution of the precomputed cumulative-mass tables covering the two
  // boundary strips (boundary-kernel policy only). Each strip's mass
  // function is tabulated once at construction on quadrature_intervals×16
  // nodes and interpolated linearly at query time, which keeps estimates
  // exactly monotone in the query bounds.
  int quadrature_intervals = 64;
};

class KernelEstimator : public SelectivityEstimator {
 public:
  static StatusOr<KernelEstimator> Create(std::span<const double> sample,
                                          const Domain& domain,
                                          const KernelEstimatorOptions& options);

  // O(log n + k) estimate; the query is clamped to the domain first.
  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;

  // Literal transcription of the paper's Algorithm 1: a Θ(n) scan with the
  // four-way case split. Requires b − a >= 2h (as the algorithm's interval
  // tests assume) and the no-boundary-treatment policy. Exposed for tests
  // and the cost benchmark.
  double EstimateSelectivityAlgorithm1(double a, double b) const;

  size_t StorageBytes() const override;
  std::string name() const override;

  double bandwidth() const { return options_.bandwidth; }
  const KernelEstimatorOptions& options() const { return options_; }
  size_t sample_size() const { return original_count_; }

  // Static inputs of the vectorized block kernel (util/simd.h): raw views
  // into this estimator's SoA hot state (sorted sample strip, boundary
  // strip tables). Valid only while this estimator is alive and unmoved —
  // build per batch call, never store. Used here and by the hybrid
  // estimator's per-cell batch dispatch.
  KernelBlockArgs MakeSimdArgs() const;

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kKernel;
  }
  // Persists the derived state (sorted samples with reflections applied,
  // precomputed boundary strip tables) so deserialization skips the
  // quadrature rebuild; the boundary KDE is construction-only scaffolding
  // and is not restored.
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<KernelEstimator> DeserializeState(ByteReader& reader);

 private:
  // Precomputed cumulative mass of the (truncated-at-zero) boundary-kernel
  // density over one boundary strip. Non-decreasing by construction, so
  // strip masses are monotone in the query bounds.
  struct StripTable {
    double lo = 0.0;
    double hi = 0.0;
    AlignedDoubles cumulative;  // cumulative[i] = mass of [lo, node_i]

    // Mass of [x1, x2] ∩ [lo, hi], by linear interpolation between nodes.
    double Mass(double x1, double x2) const;
    double CumulativeAt(double x) const;
  };

  KernelEstimator(AlignedDoubles sorted, size_t original_count,
                  const Domain& domain, const KernelEstimatorOptions& options,
                  std::optional<Kde> boundary_kde);

  // Sum of per-sample CDF differences over the (already clamped) range,
  // divided by the original sample count.
  double CdfSum(double a, double b) const;

  static StripTable BuildStripTable(const Kde& kde, double lo, double hi,
                                    int nodes);

  // Reflected copies included when reflecting. Contiguous 64-byte-aligned
  // strip (SoA hot state for the vector batch kernels; DESIGN.md §12).
  AlignedDoubles sorted_;
  size_t original_count_;
  Domain domain_;
  KernelEstimatorOptions options_;
  // Boundary-kernel density for strip integration (kBoundaryKernel only).
  std::optional<Kde> boundary_kde_;
  StripTable left_strip_;
  StripTable right_strip_;
};

}  // namespace selest

#endif  // SELEST_EST_KERNEL_ESTIMATOR_H_
