#include "src/est/wavelet_histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"

namespace selest {
namespace {

constexpr double kInvSqrt2 = 0.7071067811865475;

bool IsPowerOfTwo(int value) {
  return value > 0 && (value & (value - 1)) == 0;
}

}  // namespace

void HaarTransform(std::span<double> values) {
  SELEST_CHECK(IsPowerOfTwo(static_cast<int>(values.size())));
  std::vector<double> scratch(values.size());
  for (size_t length = values.size(); length > 1; length /= 2) {
    const size_t half = length / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[i] = (values[2 * i] + values[2 * i + 1]) * kInvSqrt2;
      scratch[half + i] = (values[2 * i] - values[2 * i + 1]) * kInvSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(length),
              values.begin());
  }
}

void InverseHaarTransform(std::span<double> values) {
  SELEST_CHECK(IsPowerOfTwo(static_cast<int>(values.size())));
  std::vector<double> scratch(values.size());
  for (size_t length = 2; length <= values.size(); length *= 2) {
    const size_t half = length / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[2 * i] = (values[i] + values[half + i]) * kInvSqrt2;
      scratch[2 * i + 1] = (values[i] - values[half + i]) * kInvSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(length),
              values.begin());
  }
}

StatusOr<WaveletHistogram> WaveletHistogram::Create(
    std::span<const double> sample, const Domain& domain,
    int num_coefficients, int base_bins) {
  if (sample.empty()) {
    return InvalidArgumentError("wavelet histogram needs a sample");
  }
  if (num_coefficients < 1) {
    return InvalidArgumentError("wavelet histogram needs >= 1 coefficient");
  }
  if (!IsPowerOfTwo(base_bins)) {
    return InvalidArgumentError("base_bins must be a power of two");
  }
  if (num_coefficients > base_bins) {
    return InvalidArgumentError("num_coefficients must be <= base_bins");
  }

  // Frequency vector over the fine cells.
  std::vector<double> coefficients(static_cast<size_t>(base_bins), 0.0);
  const double cell_width = domain.width() / base_bins;
  for (double v : sample) {
    auto cell = static_cast<long>((domain.Clamp(v) - domain.lo) / cell_width);
    cell = std::clamp<long>(cell, 0, base_bins - 1);
    coefficients[static_cast<size_t>(cell)] += 1.0;
  }

  // Transform, threshold to the top-B magnitudes (always keeping the
  // overall average at index 0), reconstruct.
  HaarTransform(coefficients);
  std::vector<size_t> order(coefficients.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::fabs(coefficients[a]) > std::fabs(coefficients[b]);
  });
  std::vector<bool> keep(coefficients.size(), false);
  keep[0] = true;
  int kept = 1;
  for (size_t rank = 0; rank < order.size() && kept < num_coefficients;
       ++rank) {
    if (keep[order[rank]]) continue;
    keep[order[rank]] = true;
    ++kept;
  }
  for (size_t i = 0; i < coefficients.size(); ++i) {
    if (!keep[i]) coefficients[i] = 0.0;
  }
  InverseHaarTransform(coefficients);

  // Thresholding can produce small negative frequencies; clamp and
  // renormalize to the sample mass.
  double total = 0.0;
  for (double& c : coefficients) {
    c = std::max(c, 0.0);
    total += c;
  }
  const double n = static_cast<double>(sample.size());
  if (total > 0.0) {
    for (double& c : coefficients) c *= n / total;
  } else {
    // Degenerate reconstruction: fall back to uniform.
    std::fill(coefficients.begin(), coefficients.end(), n / base_bins);
  }

  std::vector<double> edges(static_cast<size_t>(base_bins) + 1);
  for (int i = 0; i <= base_bins; ++i) {
    edges[static_cast<size_t>(i)] =
        i == base_bins ? domain.hi : domain.lo + i * cell_width;
  }
  auto bins = BinnedDensity::Create(std::move(edges), std::move(coefficients),
                                    n);
  if (!bins.ok()) return bins.status();
  return WaveletHistogram(std::move(bins).value(), num_coefficients);
}

double WaveletHistogram::EstimateSelectivity(double a, double b) const {
  return bins_.Selectivity(a, b);
}

void WaveletHistogram::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  BatchWithBinned(bins_, queries, out);
}

size_t WaveletHistogram::StorageBytes() const {
  // Index (u32) + value (double) per kept coefficient.
  return static_cast<size_t>(num_coefficients_) *
         (sizeof(uint32_t) + sizeof(double));
}

std::string WaveletHistogram::name() const {
  return "wavelet(" + std::to_string(num_coefficients_) + ")";
}

Status WaveletHistogram::SerializeState(ByteWriter& writer) const {
  // The reconstructed density, not the coefficient synopsis: loading must
  // answer bit-identically without re-running the inverse transform.
  WriteBinnedDensity(writer, bins_);
  writer.WriteU32(static_cast<uint32_t>(num_coefficients_));
  return Status::Ok();
}

StatusOr<WaveletHistogram> WaveletHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(BinnedDensity bins, ReadBinnedDensity(reader));
  SELEST_ASSIGN_OR_RETURN(const uint32_t num_coefficients, reader.ReadU32());
  if (num_coefficients < 1 || num_coefficients > bins.num_bins()) {
    return InvalidArgumentError(
        "wavelet snapshot coefficient count out of range");
  }
  return WaveletHistogram(std::move(bins),
                          static_cast<int>(num_coefficients));
}

}  // namespace selest
