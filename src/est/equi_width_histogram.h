// Equi-width histogram estimator (§3.1).
//
// All bins have the same width h; with a bin count adapted to the sample
// size it converges at rate O(n^−2/3), ahead of pure sampling. The winner
// of the paper's histogram comparison on large metric domains (Fig. 8).
#ifndef SELEST_EST_EQUI_WIDTH_HISTOGRAM_H_
#define SELEST_EST_EQUI_WIDTH_HISTOGRAM_H_

#include <span>

#include "src/data/domain.h"
#include "src/density/histogram_density.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class EquiWidthHistogram : public SelectivityEstimator {
 public:
  // Partitions `domain` into `num_bins` equal bins, optionally shifted: the
  // first edge starts at domain.lo + shift (shift in [0, bin width); used by
  // the average shifted histogram). Fails on an empty sample or num_bins<1.
  static StatusOr<EquiWidthHistogram> Create(std::span<const double> sample,
                                             const Domain& domain,
                                             int num_bins, double shift = 0.0);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override { return bins_.StorageBytes(); }
  std::string name() const override;

  int num_bins() const { return static_cast<int>(bins_.num_bins()); }
  double bin_width() const { return bin_width_; }
  const BinnedDensity& bins() const { return bins_; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kEquiWidth;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<EquiWidthHistogram> DeserializeState(ByteReader& reader);

  // Exact incremental maintenance: bin edges are fixed by (domain, bin
  // count), so adding another histogram's counts or bucketing new rows in
  // place reproduces Build(A ∪ B) bit for bit. MergeFrom requires the same
  // concrete type and identical edges (kFailedPrecondition otherwise).
  bool SupportsMerge() const override { return true; }
  Status MergeFrom(const SelectivityEstimator& other) override;
  Status FoldRows(std::span<const double> rows) override;

 private:
  EquiWidthHistogram(BinnedDensity bins, double bin_width)
      : bins_(std::move(bins)), bin_width_(bin_width) {}

  BinnedDensity bins_;
  double bin_width_;
};

}  // namespace selest

#endif  // SELEST_EST_EQUI_WIDTH_HISTOGRAM_H_
