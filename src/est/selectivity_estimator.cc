#include "src/est/selectivity_estimator.h"

// Interface-only translation unit; anchors the vtable-less base in the
// library.
