#include "src/est/selectivity_estimator.h"

#include "src/util/check.h"

namespace selest {

Status SelectivityEstimator::SerializeState(ByteWriter& /*writer*/) const {
  return FailedPreconditionError("estimator \"" + name() +
                                 "\" does not support snapshots");
}

Status SelectivityEstimator::MergeFrom(const SelectivityEstimator& /*other*/) {
  return FailedPreconditionError("estimator \"" + name() +
                                 "\" does not support merging");
}

Status SelectivityEstimator::FoldRows(std::span<const double> /*rows*/) {
  return FailedPreconditionError("estimator \"" + name() +
                                 "\" does not support incremental folds");
}

Status SelectivityEstimator::ObserveTrueSelectivity(
    const RangeQuery& /*query*/, double /*true_selectivity*/) {
  return FailedPreconditionError("estimator \"" + name() +
                                 "\" does not accept query feedback");
}

void SelectivityEstimator::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  BatchWith(queries, out, [this](const RangeQuery& q) {
    return EstimateSelectivity(q.a, q.b);
  });
}

}  // namespace selest
