#include "src/est/estimator_snapshot.h"

#include <cmath>
#include <utility>

#include "src/est/adaptive_kernel_estimator.h"
#include "src/est/average_shifted_histogram.h"
#include "src/est/equi_depth_histogram.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/guarded_estimator.h"
#include "src/est/hybrid_estimator.h"
#include "src/est/kernel_estimator.h"
#include "src/est/max_diff_histogram.h"
#include "src/est/sampling_estimator.h"
#include "src/est/uniform_estimator.h"
#include "src/est/v_optimal_histogram.h"
#include "src/est/wavelet_histogram.h"
#include "src/feedback/feedback_histogram.h"
#include "src/feedback/reconstructed_distribution.h"
#include "src/online/online_learning.h"

namespace selest {

void WriteDomain(ByteWriter& writer, const Domain& domain) {
  writer.WriteDouble(domain.lo);
  writer.WriteDouble(domain.hi);
  writer.WriteU32(domain.discrete ? 1 : 0);
  writer.WriteU32(static_cast<uint32_t>(domain.bits));
}

StatusOr<Domain> ReadDomain(ByteReader& reader) {
  Domain domain;
  SELEST_ASSIGN_OR_RETURN(domain.lo, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(domain.hi, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(const uint32_t discrete, reader.ReadU32());
  SELEST_ASSIGN_OR_RETURN(const uint32_t bits, reader.ReadU32());
  if (!std::isfinite(domain.lo) || !std::isfinite(domain.hi) ||
      !(domain.lo < domain.hi)) {
    return InvalidArgumentError("snapshot domain is not a finite range");
  }
  if (discrete > 1 || bits > 62) {
    return InvalidArgumentError("snapshot domain flags out of range");
  }
  domain.discrete = discrete != 0;
  domain.bits = static_cast<int>(bits);
  return domain;
}

void WriteBinnedDensity(ByteWriter& writer, const BinnedDensity& bins) {
  writer.WriteDoubleVector(bins.edges());
  writer.WriteDoubleVector(bins.counts());
  writer.WriteDouble(bins.total_count());
}

StatusOr<BinnedDensity> ReadBinnedDensity(ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(std::vector<double> edges,
                          reader.ReadDoubleVector());
  SELEST_ASSIGN_OR_RETURN(std::vector<double> counts,
                          reader.ReadDoubleVector());
  SELEST_ASSIGN_OR_RETURN(const double total_count, reader.ReadDouble());
  // BinnedDensity::Create re-validates the histogram invariants (edge
  // monotonicity, count shape, positive total), so a corrupted payload that
  // survives the CRC still cannot build an inconsistent histogram.
  return BinnedDensity::Create(std::move(edges), std::move(counts),
                               total_count);
}

void WriteKernel(ByteWriter& writer, const Kernel& kernel) {
  writer.WriteU32(static_cast<uint32_t>(kernel.type()));
}

StatusOr<Kernel> ReadKernel(ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(const uint32_t raw, reader.ReadU32());
  if (raw > static_cast<uint32_t>(KernelType::kGaussian)) {
    return InvalidArgumentError("snapshot kernel type " + std::to_string(raw) +
                                " is unknown");
  }
  return Kernel(static_cast<KernelType>(raw));
}

void WriteBoundaryPolicy(ByteWriter& writer, BoundaryPolicy policy) {
  writer.WriteU32(static_cast<uint32_t>(policy));
}

StatusOr<BoundaryPolicy> ReadBoundaryPolicy(ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(const uint32_t raw, reader.ReadU32());
  if (raw > static_cast<uint32_t>(BoundaryPolicy::kBoundaryKernel)) {
    return InvalidArgumentError("snapshot boundary policy " +
                                std::to_string(raw) + " is unknown");
  }
  return static_cast<BoundaryPolicy>(raw);
}

Status SerializeEstimator(const SelectivityEstimator& estimator,
                          ByteWriter& writer) {
  const EstimatorTag tag = estimator.SnapshotTypeTag();
  if (tag == EstimatorTag::kNone) {
    return FailedPreconditionError("estimator \"" + estimator.name() +
                                   "\" does not support snapshots");
  }
  writer.WriteU32(static_cast<uint32_t>(tag));
  return estimator.SerializeState(writer);
}

namespace {

// Deserializes a value-type estimator and hoists it onto the heap as the
// base-class pointer the catalog serves.
template <typename T, typename... Args>
StatusOr<std::unique_ptr<SelectivityEstimator>> LoadConcrete(
    ByteReader& reader, Args&&... args) {
  auto state = T::DeserializeState(reader, std::forward<Args>(args)...);
  if (!state.ok()) return state.status();
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<T>(std::move(state).value()));
}

// The guarded estimator holds atomics (non-movable), so it is built in
// place from its public constructor instead of via DeserializeState.
StatusOr<std::unique_ptr<SelectivityEstimator>> LoadGuarded(ByteReader& reader,
                                                            int depth) {
  SELEST_ASSIGN_OR_RETURN(const Domain domain, ReadDomain(reader));
  SELEST_ASSIGN_OR_RETURN(const uint32_t length, reader.ReadU32());
  constexpr uint32_t kMaxChainLength = 64;
  if (length > kMaxChainLength) {
    return InvalidArgumentError("snapshot guarded chain of " +
                                std::to_string(length) +
                                " links exceeds the sanity bound");
  }
  std::vector<std::unique_ptr<SelectivityEstimator>> chain;
  chain.reserve(length);
  for (uint32_t i = 0; i < length; ++i) {
    SELEST_ASSIGN_OR_RETURN(std::unique_ptr<SelectivityEstimator> link,
                            DeserializeEstimator(reader, depth + 1));
    chain.push_back(std::move(link));
  }
  // Degradation counters restart at zero: they describe a serving
  // lifetime, not the estimator's state.
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<GuardedEstimator>(std::move(chain), domain));
}

}  // namespace

StatusOr<std::unique_ptr<SelectivityEstimator>> DeserializeEstimator(
    ByteReader& reader, int depth) {
  if (depth > kMaxSnapshotDepth) {
    return InvalidArgumentError("snapshot nests estimators deeper than " +
                                std::to_string(kMaxSnapshotDepth));
  }
  SELEST_ASSIGN_OR_RETURN(const uint32_t raw_tag, reader.ReadU32());
  switch (static_cast<EstimatorTag>(raw_tag)) {
    case EstimatorTag::kUniform:
      return LoadConcrete<UniformEstimator>(reader);
    case EstimatorTag::kSampling:
      return LoadConcrete<SamplingEstimator>(reader);
    case EstimatorTag::kEquiWidth:
      return LoadConcrete<EquiWidthHistogram>(reader);
    case EstimatorTag::kEquiDepth:
      return LoadConcrete<EquiDepthHistogram>(reader);
    case EstimatorTag::kMaxDiff:
      return LoadConcrete<MaxDiffHistogram>(reader);
    case EstimatorTag::kVOptimal:
      return LoadConcrete<VOptimalHistogram>(reader);
    case EstimatorTag::kWavelet:
      return LoadConcrete<WaveletHistogram>(reader);
    case EstimatorTag::kAverageShifted:
      return LoadConcrete<AverageShiftedHistogram>(reader);
    case EstimatorTag::kKernel:
      return LoadConcrete<KernelEstimator>(reader);
    case EstimatorTag::kAdaptiveKernel:
      return LoadConcrete<AdaptiveKernelEstimator>(reader);
    case EstimatorTag::kHybrid:
      return LoadConcrete<HybridEstimator>(reader);
    case EstimatorTag::kGuarded:
      return LoadGuarded(reader, depth);
    case EstimatorTag::kFeedback:
      return LoadConcrete<FeedbackHistogram>(reader);
    case EstimatorTag::kReconstructed:
      return LoadConcrete<ReconstructedDistributionEstimator>(reader);
    case EstimatorTag::kOnlineLearning:
      return LoadConcrete<OnlineLearningEstimator>(reader);
    case EstimatorTag::kNone:
      break;
  }
  return InvalidArgumentError("snapshot estimator type tag " +
                              std::to_string(raw_tag) + " is unknown");
}

StatusOr<std::vector<uint8_t>> SnapshotEstimator(
    const SelectivityEstimator& estimator) {
  ByteWriter writer;
  SELEST_RETURN_IF_ERROR(SerializeEstimator(estimator, writer));
  // The payload's leading u32 is the type tag; the envelope repeats it so
  // stores can route snapshots without parsing payloads.
  return WrapSnapshot(static_cast<uint32_t>(estimator.SnapshotTypeTag()),
                      writer.bytes());
}

StatusOr<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshot(
    std::span<const uint8_t> bytes) {
  SELEST_ASSIGN_OR_RETURN(SnapshotView view, UnwrapSnapshot(bytes));
  ByteReader reader(std::move(view.payload));
  SELEST_ASSIGN_OR_RETURN(std::unique_ptr<SelectivityEstimator> estimator,
                          DeserializeEstimator(reader));
  if (static_cast<uint32_t>(estimator->SnapshotTypeTag()) != view.type_tag) {
    // The envelope tag is outside the payload CRC; a flip there is data
    // loss the checksum cannot witness.
    return DataLossError("snapshot envelope tag " +
                         std::to_string(view.type_tag) +
                         " does not match payload estimator \"" +
                         estimator->name() + "\"");
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("snapshot payload has " +
                                std::to_string(reader.remaining()) +
                                " trailing bytes");
  }
  return estimator;
}

}  // namespace selest
