// Streaming (out-of-core) estimator construction over a ColumnSource.
//
// BuildEstimator (estimator_factory.h) takes a materialized sample span;
// this layer builds the same estimators from a chunk stream without ever
// holding the column in memory. Three paths (DESIGN.md §13):
//
//   * kDomainOnly — the uniform baseline needs only the domain; no data
//     pass at all beyond the source's declared row count.
//   * kOnePassFold — equi-width: the bin edges are fixed by
//     (domain, bin count), so the counts are folded chunk by chunk over
//     ALL rows (FoldRows is exact, PR 6), giving an estimator built from
//     the full column at one chunk of resident memory. A data-dependent
//     smoothing rule (h-NS, h-DPI) resolves the bin count from the
//     reservoir sample first, which costs one extra sampling pass; with
//     SmoothingRule::kFixed the build is a single pass.
//   * kReservoirSample — every other kind (sampling, equi-depth,
//     max-diff, ash, kernel, hybrid, v-optimal, adaptive-kernel,
//     wavelet): one sequential pass fills a DecayingReservoir and the
//     estimator is built from the reservoir content via BuildEstimator.
//     This is the paper's own protocol (§5.1 builds every estimator from
//     a fixed-size sample), reached without materializing the column.
//
// Bit-identity contract (enforced by the `stream` ctest label): the
// reservoir is sequential and deterministic in (seed, stream), and count
// folds are order-independent exact integer adds, so the built estimator
// is a pure function of the row stream — chunk boundaries never leak into
// the result. In particular, when the source holds at most
// options.sample_size rows the reservoir is the whole column in insertion
// order and every path reproduces BuildEstimator over the materialized
// rows byte for byte.
#ifndef SELEST_EST_STREAMING_BUILD_H_
#define SELEST_EST_STREAMING_BUILD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/data/column_source.h"
#include "src/est/estimator_factory.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

enum class StreamingBuildPath {
  kDomainOnly,
  kOnePassFold,
  kReservoirSample,
};

const char* StreamingBuildPathName(StreamingBuildPath path);

// Which path BuildEstimatorStreaming takes for `kind`.
StreamingBuildPath StreamingPathFor(EstimatorKind kind);

struct StreamingBuildOptions {
  // Reservoir capacity; the paper's protocol samples 2000 records (§5.1).
  size_t sample_size = 2000;
  // Seed of the reservoir's replacement RNG. Deterministic: the same
  // (seed, stream) always yields the same sample.
  uint64_t seed = 1;
  // Exponential decay of the reservoir (sample/sampler.h); 0 keeps the
  // classic uniform Algorithm R.
  double reservoir_decay = 0.0;
};

struct StreamingBuild {
  std::unique_ptr<SelectivityEstimator> estimator;
  StreamingBuildPath path = StreamingBuildPath::kReservoirSample;
  // Rows streamed from the source (equals source.rows()).
  uint64_t rows_seen = 0;
  // The reservoir content the build used (empty for kDomainOnly). Returned
  // so callers sharing one source across many configs can reuse it, e.g.
  // for workload generation.
  std::vector<double> sample;
};

// Builds the configured estimator from `source` without materializing it.
// Resets the source before each pass (kOnePassFold under a data-dependent
// smoothing rule is the only config that streams twice). Fails like
// BuildEstimator on malformed domains, non-finite rows, an empty source
// (except kUniform), and unresolvable smoothing parameters; honors the
// "est/build" fault point.
StatusOr<StreamingBuild> BuildEstimatorStreaming(
    ColumnSource& source, const EstimatorConfig& config,
    const StreamingBuildOptions& options = {});

}  // namespace selest

#endif  // SELEST_EST_STREAMING_BUILD_H_
