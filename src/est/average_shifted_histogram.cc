#include "src/est/average_shifted_histogram.h"

#include <utility>

#include "src/util/check.h"

namespace selest {

StatusOr<AverageShiftedHistogram> AverageShiftedHistogram::Create(
    std::span<const double> sample, const Domain& domain, int num_bins,
    int num_shifts) {
  if (num_shifts < 1) {
    return InvalidArgumentError("ASH needs >= 1 shift");
  }
  if (num_bins < 1) {
    return InvalidArgumentError("ASH needs >= 1 bin");
  }
  const double bin_width = domain.width() / num_bins;
  std::vector<EquiWidthHistogram> histograms;
  histograms.reserve(num_shifts);
  for (int i = 0; i < num_shifts; ++i) {
    const double shift = bin_width * i / num_shifts;
    auto histogram = EquiWidthHistogram::Create(sample, domain, num_bins,
                                                shift);
    if (!histogram.ok()) return histogram.status();
    histograms.push_back(std::move(histogram).value());
  }
  return AverageShiftedHistogram(std::move(histograms), num_bins);
}

double AverageShiftedHistogram::EstimateSelectivity(double a, double b) const {
  double sum = 0.0;
  for (const EquiWidthHistogram& histogram : histograms_) {
    sum += histogram.EstimateSelectivity(a, b);
  }
  return sum / static_cast<double>(histograms_.size());
}

void AverageShiftedHistogram::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  const auto per_query = [this](const RangeQuery& q) {
    return EstimateSelectivity(q.a, q.b);
  };
  const SimdOps* ops = ActiveSimdOps();
  if (ops == nullptr) {
    BatchWith(queries, out, per_query);
    return;
  }
  // One block pass per shifted histogram, accumulating per lane in shift
  // order — the same summation order as the per-query loop above.
  BatchWithBlocks(
      queries, out, ops->width,
      [this, ops](const double* a, const double* b, double* r) {
        alignas(kSimdAlign) double shifted[kMaxSimdWidth];
        for (int k = 0; k < ops->width; ++k) r[k] = 0.0;
        for (const EquiWidthHistogram& histogram : histograms_) {
          histogram.bins().SelectivityBlock(*ops, a, b, shifted);
          for (int k = 0; k < ops->width; ++k) r[k] += shifted[k];
        }
        const double n = static_cast<double>(histograms_.size());
        for (int k = 0; k < ops->width; ++k) r[k] /= n;
        return true;
      },
      per_query);
}

size_t AverageShiftedHistogram::StorageBytes() const {
  size_t total = 0;
  for (const EquiWidthHistogram& histogram : histograms_) {
    total += histogram.StorageBytes();
  }
  return total;
}

std::string AverageShiftedHistogram::name() const {
  return "ash(" + std::to_string(num_bins_) + "x" +
         std::to_string(num_shifts()) + ")";
}

Status AverageShiftedHistogram::SerializeState(ByteWriter& writer) const {
  writer.WriteU32(static_cast<uint32_t>(num_bins_));
  writer.WriteU32(static_cast<uint32_t>(histograms_.size()));
  for (const EquiWidthHistogram& histogram : histograms_) {
    SELEST_RETURN_IF_ERROR(histogram.SerializeState(writer));
  }
  return Status::Ok();
}

StatusOr<AverageShiftedHistogram> AverageShiftedHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(const uint32_t num_bins, reader.ReadU32());
  SELEST_ASSIGN_OR_RETURN(const uint32_t num_shifts, reader.ReadU32());
  constexpr uint32_t kMaxShifts = 4096;
  if (num_bins < 1 || num_shifts < 1 || num_shifts > kMaxShifts) {
    return InvalidArgumentError("ASH snapshot shape out of range");
  }
  std::vector<EquiWidthHistogram> histograms;
  histograms.reserve(num_shifts);
  for (uint32_t i = 0; i < num_shifts; ++i) {
    SELEST_ASSIGN_OR_RETURN(EquiWidthHistogram histogram,
                            EquiWidthHistogram::DeserializeState(reader));
    histograms.push_back(std::move(histogram));
  }
  return AverageShiftedHistogram(std::move(histograms),
                                 static_cast<int>(num_bins));
}

}  // namespace selest
