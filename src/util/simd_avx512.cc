// AVX-512 tier: 8 double lanes. Compiled with -mavx512f -mavx512dq
// -mavx512vl -mavx512bw -ffp-contract=off (see src/CMakeLists.txt); only
// reached when CPUID reports AVX-512F support.
#define SELEST_SIMD_NAMESPACE simd_avx512
#define SELEST_SIMD_WIDTH 8
#include "src/util/simd_kernels.inc.h"
