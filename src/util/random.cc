#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace selest {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // Top 53 bits scaled by 2^-53: uniform on [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  SELEST_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection of the biased fringe.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  SELEST_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == ~uint64_t{0}) return static_cast<int64_t>((*this)());
  return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                              NextUint64(span + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double rate) {
  SELEST_CHECK_GT(rate, 0.0);
  // -log(1 - U) with U in [0, 1) avoids log(0).
  return -std::log1p(-NextDouble()) / rate;
}

Rng Rng::Fork() { return Rng((*this)()); }

}  // namespace selest
