#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace selest {

double Mean(std::span<const double> values) {
  SELEST_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleVariance(std::span<const double> values) {
  SELEST_CHECK_GE(values.size(), 2u);
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double SampleStddev(std::span<const double> values) {
  return std::sqrt(SampleVariance(values));
}

double QuantileSorted(std::span<const double> sorted, double q) {
  SELEST_CHECK(!sorted.empty());
  SELEST_CHECK_GE(q, 0.0);
  SELEST_CHECK_LE(q, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted[sorted.size() - 1];
  return sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower]);
}

double Quantile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return QuantileSorted(sorted, q);
}

double InterquartileRange(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return QuantileSorted(sorted, 0.75) - QuantileSorted(sorted, 0.25);
}

double NormalScaleSigma(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double stddev = SampleStddev(values);
  // 1.348 ≈ IQR of N(0,1); dividing makes the IQR comparable to a stddev.
  const double iqr_scale = InterquartileRange(values) / 1.348;
  // The paper (§4.1) takes the minimum of the two estimates; when the IQR
  // collapses to zero (heavy duplication) fall back to the stddev so the
  // bandwidth does not degenerate.
  if (iqr_scale <= 0.0) return stddev;
  return std::min(stddev, iqr_scale);
}

Summary Summarize(std::span<const double> values) {
  Summary s;
  RunningStat stat;
  for (double v : values) {
    if (s.count == 0) {
      s.min = s.max = v;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    ++s.count;
    stat.Add(v);
  }
  s.mean = stat.mean();
  s.stddev = stat.stddev();
  return s;
}

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace selest
