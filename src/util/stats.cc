#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace selest {
namespace {

// Shared by the Try and aborting quantile forms; requires sorted non-empty.
double QuantileSortedUnchecked(std::span<const double> sorted, double q) {
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted[sorted.size() - 1];
  return sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower]);
}

}  // namespace

StatusOr<double> TryMean(std::span<const double> values) {
  if (values.empty()) {
    return InvalidArgumentError("mean of an empty value set is undefined");
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Mean(std::span<const double> values) {
  auto mean = TryMean(values);
  SELEST_CHECK(mean.ok());
  return mean.value();
}

StatusOr<double> TrySampleVariance(std::span<const double> values) {
  if (values.size() < 2) {
    return InvalidArgumentError("sample variance needs at least two values");
  }
  const double mean = *TryMean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double SampleVariance(std::span<const double> values) {
  auto variance = TrySampleVariance(values);
  SELEST_CHECK(variance.ok());
  return variance.value();
}

StatusOr<double> TrySampleStddev(std::span<const double> values) {
  auto variance = TrySampleVariance(values);
  if (!variance.ok()) return variance.status();
  return std::sqrt(variance.value());
}

double SampleStddev(std::span<const double> values) {
  return std::sqrt(SampleVariance(values));
}

StatusOr<double> TryQuantileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    return InvalidArgumentError("quantile of an empty value set is undefined");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    return InvalidArgumentError("quantile level must be in [0, 1]");
  }
  return QuantileSortedUnchecked(sorted, q);
}

double QuantileSorted(std::span<const double> sorted, double q) {
  auto quantile = TryQuantileSorted(sorted, q);
  SELEST_CHECK(quantile.ok());
  return quantile.value();
}

StatusOr<double> TryQuantile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return TryQuantileSorted(sorted, q);
}

double Quantile(std::span<const double> values, double q) {
  auto quantile = TryQuantile(values, q);
  SELEST_CHECK(quantile.ok());
  return quantile.value();
}

StatusOr<double> TryInterquartileRange(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  auto q75 = TryQuantileSorted(sorted, 0.75);
  if (!q75.ok()) return q75.status();
  return q75.value() - *TryQuantileSorted(sorted, 0.25);
}

double InterquartileRange(std::span<const double> values) {
  auto iqr = TryInterquartileRange(values);
  SELEST_CHECK(iqr.ok());
  return iqr.value();
}

double NormalScaleSigma(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double stddev = SampleStddev(values);
  // 1.348 ≈ IQR of N(0,1); dividing makes the IQR comparable to a stddev.
  const double iqr_scale = InterquartileRange(values) / 1.348;
  // The paper (§4.1) takes the minimum of the two estimates; when the IQR
  // collapses to zero (heavy duplication) fall back to the stddev so the
  // bandwidth does not degenerate.
  if (iqr_scale <= 0.0) return stddev;
  return std::min(stddev, iqr_scale);
}

Summary Summarize(std::span<const double> values) {
  Summary s;
  RunningStat stat;
  for (double v : values) {
    if (s.count == 0) {
      s.min = s.max = v;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    ++s.count;
    stat.Add(v);
  }
  s.mean = stat.mean();
  s.stddev = stat.stddev();
  return s;
}

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace selest
