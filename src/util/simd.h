// Portable SIMD shim: runtime-dispatched batch kernels for the estimator
// hot paths (ROADMAP item 2, DESIGN.md §12).
//
// One binary serves any host: the vector kernels are compiled into
// per-ISA translation units (util/simd_avx2.cc at 4 lanes,
// util/simd_avx512.cc at 8 lanes, both from util/simd_kernels.inc.h) and
// selected once at runtime from CPUID. The scalar tier has no kernel
// table at all — callers fall back to their existing per-query scalar
// code, which keeps exactly one source of truth for the reference
// semantics.
//
// Exactness policy (tested by est_simd_identity_test): every vector
// kernel is *bit-identical* to the scalar path. The kernels batch one
// query per SIMD lane and replay the scalar code's floating-point
// operations in the same order within each lane; data-dependent scalar
// branches become lane blends whose discarded side never feeds the
// accumulator (x + 0.0 == x for the non-negative finite partial sums
// involved). The per-ISA TUs are compiled with -ffp-contract=off so no
// tier ever fuses a multiply-add the baseline scalar build would not.
// kSimdUlpTolerance documents the contract and is asserted at 0.
#ifndef SELEST_UTIL_SIMD_H_
#define SELEST_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace selest {

// The batch kernels are exact, not merely close: the identity suite
// compares them to the scalar path with EXPECT_EQ, i.e. a 0-ULP bound.
inline constexpr int kSimdUlpTolerance = 0;

// ---------------------------------------------------------------------------
// Aligned storage for struct-of-arrays hot state.
// ---------------------------------------------------------------------------

// Hot estimator state (bin edges/counts, sorted sample strips, strip-table
// nodes, per-block query staging) is kept on cache-line boundaries so a
// vector block never straddles more lines than it must.
inline constexpr size_t kSimdAlign = 64;

template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kSimdAlign)));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t(kSimdAlign));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;
// The SoA workhorse: a contiguous, 64-byte-aligned strip of doubles.
using AlignedDoubles = AlignedVector<double>;

// ---------------------------------------------------------------------------
// Branch-free four-way binary search.
// ---------------------------------------------------------------------------
//
// Replaces the std::lower_bound/std::upper_bound chains on the indexed
// kernel, sampling, and histogram paths. Each step probes the three
// quarter pivots of the window with independent (ILP-friendly, cmov-able)
// comparisons; over a sorted array the predicates are monotone, so the
// sum of the true ones advances the base straight to the chosen quarter.
// Returns exactly the index std::lower_bound/std::upper_bound would for
// every total-ordered input (asserted by util_simd_test, including
// duplicate runs and ±inf keys).

inline size_t BranchFreeLowerBound(const double* data, size_t n, double key) {
  const double* base = data;
  while (n > 3) {
    const size_t q = n >> 2;
    const size_t s1 = base[q - 1] < key ? q : 0;
    const size_t s2 = base[2 * q - 1] < key ? q : 0;
    const size_t s3 = base[3 * q - 1] < key ? q : 0;
    const size_t adv = s1 + s2 + s3;
    base += adv;
    n = adv == 3 * q ? n - 3 * q : q;
  }
  // n <= 3: a cmov chain finishes the window (re-testing a non-advancing
  // position is a no-op, so the fixed trip count is safe).
  for (size_t i = 0; i < n; ++i) base += (*base < key) ? 1 : 0;
  return static_cast<size_t>(base - data);
}

inline size_t BranchFreeUpperBound(const double* data, size_t n, double key) {
  const double* base = data;
  // Advance on !(key < x), never the would-be-equivalent x <= key: they
  // differ for NaN keys (std::upper_bound returns n, x <= NaN would give 0),
  // and callers rely on matching std exactly for every input.
  while (n > 3) {
    const size_t q = n >> 2;
    const size_t s1 = !(key < base[q - 1]) ? q : 0;
    const size_t s2 = !(key < base[2 * q - 1]) ? q : 0;
    const size_t s3 = !(key < base[3 * q - 1]) ? q : 0;
    const size_t adv = s1 + s2 + s3;
    base += adv;
    n = adv == 3 * q ? n - 3 * q : q;
  }
  for (size_t i = 0; i < n; ++i) base += !(key < *base) ? 1 : 0;
  return static_cast<size_t>(base - data);
}

// ---------------------------------------------------------------------------
// The dispatched block kernels.
// ---------------------------------------------------------------------------

// Widest tier; block staging buffers are sized for it.
inline constexpr int kMaxSimdWidth = 8;

// Static (per-estimator) inputs of the kernel-estimator block kernel: the
// sorted sample strip plus the boundary strip tables, passed as raw
// pointers so the per-ISA TUs need no estimator headers. Built per batch
// call by KernelEstimator::MakeSimdArgs(), so there are never stored
// cross-object pointers to keep valid.
struct KernelBlockArgs {
  const double* sorted = nullptr;  // reflected-sorted sample strip
  int64_t sorted_size = 0;
  double original_count = 0.0;  // the CdfSum divisor
  double h = 0.0;               // bandwidth
  double radius = 0.0;          // kernel support radius × h
  double domain_lo = 0.0;
  double domain_hi = 0.0;
  bool boundary_kernel = false;  // use the strip tables below
  const double* left_cum = nullptr;
  int64_t left_size = 0;
  double left_lo = 0.0;
  double left_hi = 0.0;
  const double* right_cum = nullptr;
  int64_t right_size = 0;
  double right_lo = 0.0;
  double right_hi = 0.0;
};

// One table per vector tier. Every function processes exactly `width`
// queries (a/b/out are width-long, kSimdAlign-aligned); callers pad the
// final partial block by replicating its last query — lanes are
// independent, so padding never changes a real lane's bits.
struct SimdOps {
  int width = 0;

  // BinnedDensity::Selectivity for one block: vectorized edge search plus
  // a masked bin walk accumulating in scalar bin order. Handles every
  // input (atoms, inverted and out-of-range queries) — never bails.
  void (*histogram_block)(const double* edges, const double* counts,
                          int64_t num_bins, double total_count,
                          const double* a, const double* b, double* out);

  // SamplingEstimator::EstimateSelectivity for one block: two vectorized
  // branch-free searches per lane.
  void (*sorted_count_block)(const double* sorted, int64_t n, const double* a,
                             const double* b, double* out);

  // KernelEstimator::EstimateSelectivity (Epanechnikov) for one block.
  // Returns 1 when the block was handled, 0 when the caller must fall
  // back to its scalar path (lanes disagree on the wide/narrow CdfSum
  // case split or on boundary-strip coverage, or a bound is non-finite) —
  // the blend trick needs every lane on the same scalar control path.
  int (*kernel_block)(const KernelBlockArgs& args, const double* a,
                      const double* b, double* out);
};

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* SimdTierName(SimdTier tier);

// True when this host can execute `tier` (kScalar is always supported).
bool SimdTierSupported(SimdTier tier);

// The tier batch paths use right now: the best supported tier, capped by
// the SELEST_SIMD environment variable ("scalar", "avx2", "avx512";
// detected once) and by any active ScopedSimdTier override.
SimdTier ActiveSimdTier();

// The kernel table for the active tier, or nullptr for the scalar tier
// (callers then run their per-query scalar code). Thread-safe.
const SimdOps* ActiveSimdOps();

// The table for one specific tier (nullptr for kScalar or an unsupported
// tier); used by the identity tests and the speedup benches.
const SimdOps* SimdOpsForTier(SimdTier tier);

// Scoped tier override for tests and benchmarks. Takes effect for batch
// calls issued after construction (including work those calls fan out to
// pool threads); do not change tiers while a batch is in flight.
// Requires SimdTierSupported(tier).
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier tier);
  ~ScopedSimdTier();

  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

 private:
  int previous_;  // encoded override slot, -1 = none
};

}  // namespace selest

#endif  // SELEST_UTIL_SIMD_H_
