// Descriptive statistics used by the smoothing-parameter rules of Section 4:
// the normal scale rules need the sample standard deviation and the
// interquartile range, and the error metrics need means over query files.
#ifndef SELEST_UTIL_STATS_H_
#define SELEST_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/util/status.h"

namespace selest {

// Each statistic below comes in two flavors. The Try* form is Status-first:
// it rejects degenerate input (empty spans, too few values, a quantile
// outside [0, 1]) with an error Status and is what report aggregation and
// other externally-fed paths use. The plain form keeps the historical
// contract — the precondition is a programmer invariant and violating it
// aborts — for call sites that have already established it.

// Arithmetic mean. Errors on an empty span.
StatusOr<double> TryMean(std::span<const double> values);
// Arithmetic mean. Requires a non-empty span.
double Mean(std::span<const double> values);

// Unbiased sample variance (divides by n-1). Errors on fewer than two
// values.
StatusOr<double> TrySampleVariance(std::span<const double> values);
// Unbiased sample variance (divides by n-1). Requires at least two values.
double SampleVariance(std::span<const double> values);

// Square root of the sample variance; same preconditions.
StatusOr<double> TrySampleStddev(std::span<const double> values);
double SampleStddev(std::span<const double> values);

// The q-quantile (0 <= q <= 1) with linear interpolation between order
// statistics (the "type 7" definition used by R and NumPy). Errors on an
// empty span or a q outside [0, 1]. O(n log n): copies and sorts.
StatusOr<double> TryQuantile(std::span<const double> values, double q);
// Aborting form. Requires a non-empty span and q in [0, 1].
double Quantile(std::span<const double> values, double q);

// Like the quantile forms but for data already sorted ascending; O(1).
StatusOr<double> TryQuantileSorted(std::span<const double> sorted, double q);
double QuantileSorted(std::span<const double> sorted, double q);

// Interquartile range: 0.75-quantile minus 0.25-quantile. The Try form
// errors on an empty span.
StatusOr<double> TryInterquartileRange(std::span<const double> values);
double InterquartileRange(std::span<const double> values);

// The robust scale estimate of Section 4.1/4.2:
//   s = min(sample stddev, IQR / 1.348),
// the minimum of the empirical standard deviation and the normalized
// interquartile range (1.348 is the IQR of the standard normal). For fewer
// than two distinct values the scale is 0 and callers must handle it.
double NormalScaleSigma(std::span<const double> values);

// Summary of one pass over a data set.
struct Summary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // 0 when count < 2
};

// Computes the summary in one pass (Welford's algorithm for the variance).
Summary Summarize(std::span<const double> values);

// Incremental mean/variance accumulator (Welford). Used by the experiment
// harness to aggregate per-query errors without storing them all.
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  // Mean of the values added so far; 0 if none.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Unbiased variance; 0 when fewer than two values.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace selest

#endif  // SELEST_UTIL_STATS_H_
