#include "src/util/serialize.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>

#include "src/exec/fault_injection.h"

namespace selest {

void ByteWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteString(const std::string& value) {
  WriteU32(static_cast<uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void ByteWriter::WriteDoubleVector(std::span<const double> values) {
  WriteU64(values.size());
  // Bulk path for the WAL ingest hot loop: resize once, then fill. On a
  // little-endian host the wire format is the in-memory layout, so the
  // whole array is one memcpy; the byte-store fallback keeps the encoding
  // identical elsewhere.
  size_t at = bytes_.size();
  bytes_.resize(at + values.size() * sizeof(uint64_t));
  if constexpr (std::endian::native == std::endian::little) {
    if (!values.empty()) {
      std::memcpy(bytes_.data() + at, values.data(),
                  values.size() * sizeof(double));
    }
  } else {
    for (double v : values) {
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      for (int shift = 0; shift < 64; shift += 8) {
        bytes_[at++] = static_cast<uint8_t>(bits >> shift);
      }
    }
  }
}

Status ByteReader::Need(size_t count) {
  if (remaining() < count) {
    return OutOfRangeError("truncated input: need " + std::to_string(count) +
                           " bytes, have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

StatusOr<uint32_t> ByteReader::ReadU32() {
  Status status = Need(4);
  if (!status.ok()) return status;
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(bytes_[position_++]) << shift;
  }
  return value;
}

StatusOr<uint64_t> ByteReader::ReadU64() {
  Status status = Need(8);
  if (!status.ok()) return status;
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(bytes_[position_++]) << shift;
  }
  return value;
}

StatusOr<double> ByteReader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double value;
  const uint64_t raw = bits.value();
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

StatusOr<std::string> ByteReader::ReadString() {
  auto size = ReadU32();
  if (!size.ok()) return size.status();
  Status status = Need(size.value());
  if (!status.ok()) return status;
  std::string value(reinterpret_cast<const char*>(&bytes_[position_]),
                    size.value());
  position_ += size.value();
  return value;
}

StatusOr<std::vector<double>> ByteReader::ReadDoubleVector() {
  auto count = ReadU64();
  if (!count.ok()) return count.status();
  // 8 bytes per double: reject implausible counts before allocating. The
  // division (rather than count * 8) keeps a forged count near 2^61 from
  // overflowing past the bounds check into a huge allocation.
  if (count.value() > remaining() / 8) {
    return OutOfRangeError("truncated input: vector of " +
                           std::to_string(count.value()) +
                           " doubles exceeds the " +
                           std::to_string(remaining()) + " bytes remaining");
  }
  std::vector<double> values;
  values.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto v = ReadDouble();
    if (!v.ok()) return v.status();
    values.push_back(v.value());
  }
  return values;
}

namespace {

// Slicing-by-8 tables. tables[0] is the classic byte-at-a-time table;
// tables[t][b] extends it so eight input bytes fold into the register per
// step. Same polynomial, bit-identical results to the one-table loop (the
// golden-vector test pins this).
std::array<std::array<uint32_t, 256>, 8> MakeCrc32Tables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (size_t t = 1; t < 8; ++t) {
      tables[t][i] =
          (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xFFu];
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      MakeCrc32Tables();
  uint32_t crc = 0xFFFFFFFFu;
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(bytes[i]) |
                               static_cast<uint32_t>(bytes[i + 1]) << 8 |
                               static_cast<uint32_t>(bytes[i + 2]) << 16 |
                               static_cast<uint32_t>(bytes[i + 3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(bytes[i + 4]) |
                        static_cast<uint32_t>(bytes[i + 5]) << 8 |
                        static_cast<uint32_t>(bytes[i + 6]) << 16 |
                        static_cast<uint32_t>(bytes[i + 7]) << 24;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
  }
  for (; i < bytes.size(); ++i) {
    crc = (crc >> 8) ^ tables[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> WrapSnapshot(uint32_t type_tag,
                                  std::span<const uint8_t> payload) {
  ByteWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotFormatVersion);
  writer.WriteU32(type_tag);
  writer.WriteU64(payload.size());
  std::vector<uint8_t> bytes = writer.TakeBytes();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32(payload);
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<uint8_t>(crc >> shift));
  }
  return bytes;
}

uint32_t SnapshotContentCrc(std::span<const uint8_t> file_bytes) {
  // Skip the envelope's trailing payload-CRC (see header comment). Files
  // too short to carry one are hashed whole; they fail UnwrapSnapshot
  // anyway, so their identity value never proves a usable snapshot.
  if (file_bytes.size() <= 4) return Crc32(file_bytes);
  return Crc32(file_bytes.first(file_bytes.size() - 4));
}

StatusOr<SnapshotView> UnwrapSnapshot(std::span<const uint8_t> bytes) {
  // Fixed parts: 20-byte header (magic, version, tag, payload size) plus a
  // 4-byte trailing checksum.
  constexpr size_t kHeaderBytes = 20;
  constexpr size_t kCrcBytes = 4;
  if (bytes.size() < kHeaderBytes + kCrcBytes) {
    return OutOfRangeError(
        "snapshot truncated: " + std::to_string(bytes.size()) +
        " bytes is smaller than the " +
        std::to_string(kHeaderBytes + kCrcBytes) + "-byte envelope");
  }
  ByteReader header(std::vector<uint8_t>(bytes.begin(),
                                         bytes.begin() + kHeaderBytes));
  const uint32_t magic = header.ReadU32().value();
  const uint32_t version = header.ReadU32().value();
  const uint32_t type_tag = header.ReadU32().value();
  const uint64_t payload_size = header.ReadU64().value();
  if (magic != kSnapshotMagic) {
    return DataLossError("snapshot magic mismatch: not a selest snapshot");
  }
  if (version > kSnapshotFormatVersion) {
    return FailedPreconditionError(
        "snapshot format version " + std::to_string(version) +
        " is newer than supported version " +
        std::to_string(kSnapshotFormatVersion));
  }
  if (bytes.size() - kHeaderBytes - kCrcBytes < payload_size) {
    return OutOfRangeError(
        "snapshot truncated: header promises " +
        std::to_string(payload_size) + "-byte payload, only " +
        std::to_string(bytes.size() - kHeaderBytes - kCrcBytes) +
        " bytes present");
  }
  if (bytes.size() - kHeaderBytes - kCrcBytes > payload_size) {
    return InvalidArgumentError(
        "snapshot has trailing bytes after the checksum");
  }
  std::span<const uint8_t> payload = bytes.subspan(kHeaderBytes, payload_size);
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[kHeaderBytes + payload_size + i])
                  << (8 * i);
  }
  if (Crc32(payload) != stored_crc) {
    return DataLossError("snapshot payload CRC32 mismatch");
  }
  SnapshotView view;
  view.type_tag = type_tag;
  view.payload.assign(payload.begin(), payload.end());
  return view;
}

Status WriteBytesToFile(const std::string& path,
                        std::span<const uint8_t> bytes) {
  // A process-unique temporary name, so concurrent writers racing to
  // write-back the same snapshot never scribble on each other's half-done
  // file; the final rename is atomic and last-writer-wins.
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp_path =
      path + ".tmp" +
      std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("failed to open " + tmp_path + " for writing");
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp_path.c_str());
    return InternalError("short write to " + tmp_path);
  }
  // Crash point between the temporary write and the rename: firing leaves
  // the .tmp sibling on disk, exactly as a process death here would — the
  // orphan the SnapshotStore construction sweep exists to reclaim.
  SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointStoreRename));
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return InternalError("failed to rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ReadBytesFromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("no such snapshot file: " + path);
  }
  std::vector<uint8_t> bytes;
  std::array<uint8_t, 4096> chunk;
  size_t got;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), file)) > 0) {
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return InternalError("read error on snapshot file: " + path);
  }
  return bytes;
}

}  // namespace selest
