#include "src/util/serialize.h"

#include <cstring>

namespace selest {

void ByteWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteString(const std::string& value) {
  WriteU32(static_cast<uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void ByteWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double v : values) WriteDouble(v);
}

Status ByteReader::Need(size_t count) {
  if (remaining() < count) {
    return OutOfRangeError("truncated input: need " + std::to_string(count) +
                           " bytes, have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

StatusOr<uint32_t> ByteReader::ReadU32() {
  Status status = Need(4);
  if (!status.ok()) return status;
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(bytes_[position_++]) << shift;
  }
  return value;
}

StatusOr<uint64_t> ByteReader::ReadU64() {
  Status status = Need(8);
  if (!status.ok()) return status;
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(bytes_[position_++]) << shift;
  }
  return value;
}

StatusOr<double> ByteReader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double value;
  const uint64_t raw = bits.value();
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

StatusOr<std::string> ByteReader::ReadString() {
  auto size = ReadU32();
  if (!size.ok()) return size.status();
  Status status = Need(size.value());
  if (!status.ok()) return status;
  std::string value(reinterpret_cast<const char*>(&bytes_[position_]),
                    size.value());
  position_ += size.value();
  return value;
}

StatusOr<std::vector<double>> ByteReader::ReadDoubleVector() {
  auto count = ReadU64();
  if (!count.ok()) return count.status();
  // 8 bytes per double: reject implausible counts before allocating.
  Status status = Need(count.value() * 8);
  if (!status.ok()) return status;
  std::vector<double> values;
  values.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto v = ReadDouble();
    if (!v.ok()) return v.status();
    values.push_back(v.value());
  }
  return values;
}

}  // namespace selest
