// Assertion macros for programmer errors.
//
// selest does not use exceptions (Google C++ style). Invariant violations
// are programmer errors and abort the process with a diagnostic; recoverable
// failures use selest::Status (see util/status.h) instead.
#ifndef SELEST_UTIL_CHECK_H_
#define SELEST_UTIL_CHECK_H_

namespace selest {
namespace internal {

// Prints `file:line: message` to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* message);

}  // namespace internal
}  // namespace selest

// Aborts with a diagnostic unless `condition` holds. Always evaluated,
// including in release builds: the estimators are cheap relative to the
// experiments driving them, and silent corruption of an estimate is worse
// than a crash.
#define SELEST_CHECK(condition)                                         \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::selest::internal::CheckFailed(__FILE__, __LINE__,               \
                                      "SELEST_CHECK failed: " #condition); \
    }                                                                   \
  } while (false)

#define SELEST_CHECK_OP(op, a, b) SELEST_CHECK((a)op(b))
#define SELEST_CHECK_EQ(a, b) SELEST_CHECK_OP(==, a, b)
#define SELEST_CHECK_NE(a, b) SELEST_CHECK_OP(!=, a, b)
#define SELEST_CHECK_LT(a, b) SELEST_CHECK_OP(<, a, b)
#define SELEST_CHECK_LE(a, b) SELEST_CHECK_OP(<=, a, b)
#define SELEST_CHECK_GT(a, b) SELEST_CHECK_OP(>, a, b)
#define SELEST_CHECK_GE(a, b) SELEST_CHECK_OP(>=, a, b)

#endif  // SELEST_UTIL_CHECK_H_
