// AVX2 tier: 4 double lanes. Compiled with -mavx2 -ffp-contract=off (see
// src/CMakeLists.txt); only reached when CPUID reports AVX2 support.
#define SELEST_SIMD_NAMESPACE simd_avx2
#define SELEST_SIMD_WIDTH 4
#include "src/util/simd_kernels.inc.h"
