// Deterministic pseudo-random number generation for reproducible experiments.
//
// The experiments in the paper depend on sampled data; to make every figure
// reproducible bit-for-bit we use a self-contained xoshiro256++ generator
// seeded through splitmix64 rather than an implementation-defined standard
// library engine.
#ifndef SELEST_UTIL_RANDOM_H_
#define SELEST_UTIL_RANDOM_H_

#include <cstdint>

namespace selest {

// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
// Satisfies the C++ UniformRandomBitGenerator concept, but selest code uses
// the member helpers below so results do not depend on the standard
// library's distribution implementations.
class Rng {
 public:
  using result_type = uint64_t;

  // Seeds the four 64-bit state words from `seed` via splitmix64, as
  // recommended by the xoshiro authors.
  explicit Rng(uint64_t seed = 0x5e1e57u);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  // Next raw 64 bits.
  uint64_t operator()();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  // nearly-divisionless rejection method, so the result is exactly uniform.
  uint64_t NextUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  // Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  // Exponential deviate with the given rate (mean 1/rate). rate > 0.
  double NextExponential(double rate);

  // Creates an independent generator: advances this generator and seeds a
  // new one from its output. Useful to give each dataset/workload its own
  // stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  // Cached second deviate from the polar method; NaN when absent.
  double cached_gaussian_;
  bool has_cached_gaussian_ = false;
};

}  // namespace selest

#endif  // SELEST_UTIL_RANDOM_H_
