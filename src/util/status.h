// Lightweight Status / StatusOr in the style of absl::Status, used for
// recoverable failures (invalid estimator configurations, empty samples).
#ifndef SELEST_UTIL_STATUS_H_
#define SELEST_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace selest {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kNotFound = 4,
  kInternal = 5,
  // A bounded retry loop (rejection sampling, workload generation) gave up.
  kResourceExhausted = 6,
  // Persisted bytes are provably corrupt (bad magic, CRC mismatch): the
  // data is unrecoverable, as opposed to merely malformed input.
  kDataLoss = 7,
};

// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// The result of an operation that can fail. A Status is either OK or carries
// an error code and message. Cheap to copy for the OK case in practice
// (empty message).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: why".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status NotFoundError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DataLossError(std::string message);

// Holds either a value of type T or an error Status. Accessing the value of
// an errored StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: lets factories write
  // `return value;` and `return SomeError(...);` symmetrically.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SELEST_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SELEST_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SELEST_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SELEST_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace selest

// Propagates a non-OK Status out of the enclosing function (which must
// itself return Status or StatusOr<T>):
//
//   SELEST_RETURN_IF_ERROR(ValidateConfig(config));
#define SELEST_RETURN_IF_ERROR(expr)                         \
  do {                                                       \
    ::selest::Status selest_status_ = (expr);                \
    if (!selest_status_.ok()) return selest_status_;         \
  } while (false)

// Evaluates a StatusOr<T> expression; on success moves the value into
// `lhs` (a declaration or an existing lvalue), otherwise propagates the
// error out of the enclosing function:
//
//   SELEST_ASSIGN_OR_RETURN(const double bandwidth,
//                           TryNormalScaleBandwidth(sample, domain));
#define SELEST_ASSIGN_OR_RETURN(lhs, expr) \
  SELEST_ASSIGN_OR_RETURN_IMPL_(           \
      SELEST_STATUS_CONCAT_(selest_statusor_, __LINE__), lhs, expr)

#define SELEST_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                                  \
  if (!statusor.ok()) return statusor.status();            \
  lhs = std::move(statusor).value()

#define SELEST_STATUS_CONCAT_(a, b) SELEST_STATUS_CONCAT_IMPL_(a, b)
#define SELEST_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // SELEST_UTIL_STATUS_H_
