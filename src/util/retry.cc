#include "src/util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace selest {
namespace {

// SplitMix64 finalizer: a stateless seeded hash of the attempt index,
// giving each attempt an independent uniform draw in [0, 1) that is
// reproducible across runs (the same construction as the fault injector's
// probabilistic plans).
double HashToUnit(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

uint64_t DefaultClockTicks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void DefaultSleepTicks(uint64_t ticks) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ticks));
}

}  // namespace

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kResourceExhausted;
}

uint64_t BackoffDelayTicks(const RetryOptions& options, size_t attempt) {
  if (attempt == 0) return 0;
  const size_t shift = std::min<size_t>(attempt - 1, 63);
  uint64_t delay = options.base_delay_ticks;
  // Saturating shift: base << shift without wrapping past 2^64.
  if (shift > 0) {
    delay = (delay >> (64 - shift)) != 0 ? ~uint64_t{0} : delay << shift;
  }
  delay = std::min(delay, options.max_delay_ticks);
  const double jitter = std::clamp(options.jitter, 0.0, 1.0);
  const double factor =
      1.0 - jitter + jitter * HashToUnit(options.seed, attempt);
  return static_cast<uint64_t>(static_cast<double>(delay) * factor);
}

Status RetryWithBackoff(const RetryOptions& options,
                        const std::function<Status()>& operation,
                        size_t* attempts_out,
                        const std::function<void(uint64_t)>& sleep,
                        const std::function<uint64_t()>& clock) {
  const auto now = clock ? clock : DefaultClockTicks;
  const auto wait = sleep ? sleep : DefaultSleepTicks;
  const size_t max_attempts = std::max<size_t>(options.max_attempts, 1);
  const uint64_t start = now();

  Status status;
  size_t attempts = 0;
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    status = operation();
    attempts = attempt;
    if (status.ok() || !IsRetryableStatus(status)) break;
    if (attempt == max_attempts) break;
    const uint64_t delay = BackoffDelayTicks(options, attempt);
    if (options.deadline_ticks > 0) {
      const uint64_t tick = now();
      // A clock stepping backwards must not extend the budget: treat any
      // backwards step as zero elapsed time rather than wrapping negative.
      const uint64_t elapsed = tick >= start ? tick - start : 0;
      if (elapsed >= options.deadline_ticks ||
          options.deadline_ticks - elapsed <= delay) {
        break;
      }
    }
    wait(delay);
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return status;
}

}  // namespace selest
