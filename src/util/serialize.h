// Minimal binary serialization for catalog persistence.
//
// Fixed little-endian layout: u32/u64 integers, IEEE-754 doubles, and
// length-prefixed strings/arrays. The reader is bounds-checked and returns
// errors (never UB) on truncated or corrupt input.
#ifndef SELEST_UTIL_SERIALIZE_H_
#define SELEST_UTIL_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace selest {

class ByteWriter {
 public:
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteDoubleVector(const std::vector<double>& values);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<double> ReadDouble();
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<double>> ReadDoubleVector();

  // True when every byte has been consumed.
  bool AtEnd() const { return position_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - position_; }

 private:
  Status Need(size_t count);

  std::vector<uint8_t> bytes_;
  size_t position_ = 0;
};

}  // namespace selest

#endif  // SELEST_UTIL_SERIALIZE_H_
