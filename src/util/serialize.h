// Minimal binary serialization for catalog persistence.
//
// Fixed little-endian layout: u32/u64 integers, IEEE-754 doubles, and
// length-prefixed strings/arrays. The reader is bounds-checked and returns
// errors (never UB) on truncated or corrupt input.
//
// On top of the raw codec sits the snapshot envelope used by every
// persisted artifact (estimator snapshots, catalog entries):
//
//   magic u32 | format version u32 | type tag u32 | payload size u64 |
//   payload bytes | CRC32(payload) u32
//
// UnwrapSnapshot distinguishes the failure modes a store must react to
// differently: kOutOfRange for truncation, kDataLoss for bad magic or a
// CRC mismatch, kFailedPrecondition for a format version newer than this
// binary understands.
#ifndef SELEST_UTIL_SERIALIZE_H_
#define SELEST_UTIL_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace selest {

class ByteWriter {
 public:
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteDoubleVector(std::span<const double> values);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<double> ReadDouble();
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<double>> ReadDoubleVector();

  // True when every byte has been consumed.
  bool AtEnd() const { return position_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - position_; }

 private:
  Status Need(size_t count);

  std::vector<uint8_t> bytes_;
  size_t position_ = 0;
};

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). Crc32("123456789")
// == 0xCBF43926.
uint32_t Crc32(std::span<const uint8_t> bytes);

// Snapshot envelope constants. The magic never changes; the format version
// bumps whenever the envelope layout itself changes (payload evolution is
// the type tag owner's business).
inline constexpr uint32_t kSnapshotMagic = 0x50534C53;  // "SLSP" on disk
inline constexpr uint32_t kSnapshotFormatVersion = 1;

struct SnapshotView {
  uint32_t type_tag = 0;
  std::vector<uint8_t> payload;
};

// Wraps `payload` in the checksummed envelope described above.
std::vector<uint8_t> WrapSnapshot(uint32_t type_tag,
                                  std::span<const uint8_t> payload);

// Content identity of a wrapped snapshot, for use in durability marks.
// The envelope ends in CRC32(payload), and a CRC over bytes that already
// end in their own CRC collapses to a constant residue — Crc32 of the
// whole file is identical for every valid snapshot and cannot tell two
// snapshots apart. This hashes everything before the embedded checksum
// instead (header + payload), which is content-sensitive.
uint32_t SnapshotContentCrc(std::span<const uint8_t> file_bytes);

// Validates and strips the envelope. Truncation (at any byte) is
// kOutOfRange; bad magic or a CRC mismatch is kDataLoss; a format version
// above kSnapshotFormatVersion is kFailedPrecondition; trailing bytes after
// the checksum are kInvalidArgument.
StatusOr<SnapshotView> UnwrapSnapshot(std::span<const uint8_t> bytes);

// Whole-file byte IO for snapshot persistence. WriteBytesToFile writes to a
// temporary sibling and renames it into place, so a concurrent reader never
// observes a half-written snapshot. ReadBytesFromFile is kNotFound for a
// missing file.
Status WriteBytesToFile(const std::string& path,
                        std::span<const uint8_t> bytes);
StatusOr<std::vector<uint8_t>> ReadBytesFromFile(const std::string& path);

}  // namespace selest

#endif  // SELEST_UTIL_SERIALIZE_H_
