// Width-parametric vector kernels, included by the per-ISA translation
// units (util/simd_avx2.cc, util/simd_avx512.cc) with
//
//   SELEST_SIMD_NAMESPACE — namespace to define the kernels in, and
//   SELEST_SIMD_WIDTH     — lanes per block (4 or 8).
//
// The kernels are written with GCC vector extensions: one query per lane,
// replaying the scalar reference code's floating-point operations in the
// same order within each lane. Data-dependent scalar branches become
// blends whose discarded side contributes exactly 0.0, so results are
// bit-identical to the scalar path (DESIGN.md §12; the including TU is
// compiled with -ffp-contract=off so no multiply-add fusion can creep in).
//
// This file deliberately has no include guard semantics beyond one
// inclusion per TU; it must only be included by the simd_*.cc ISA files.

#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "src/util/simd.h"

namespace selest {
namespace SELEST_SIMD_NAMESPACE {
namespace {

constexpr int kW = SELEST_SIMD_WIDTH;

typedef double VecD __attribute__((vector_size(kW * 8)));
typedef int64_t VecI __attribute__((vector_size(kW * 8)));

inline VecD BroadcastD(double x) {
  VecD v;
  for (int i = 0; i < kW; ++i) v[i] = x;
  return v;
}

inline VecI BroadcastI(int64_t x) {
  VecI v;
  for (int i = 0; i < kW; ++i) v[i] = x;
  return v;
}

inline VecD LoadD(const double* p) {
  VecD v;
  for (int i = 0; i < kW; ++i) v[i] = p[i];
  return v;
}

inline void StoreD(double* p, VecD v) {
  for (int i = 0; i < kW; ++i) p[i] = v[i];
}

// Hardware gathers where the ISA has them: the block kernels are
// gather-bound (edges/counts/sample strips indexed per lane), and the
// elementwise fallback loop costs kW dependent scalar loads per call.
inline VecD Gather(const double* p, VecI idx) {
#if SELEST_SIMD_WIDTH == 8 && defined(__AVX512F__)
  // Full-mask gather over a zeroed source: the plain unmasked intrinsic
  // expands over an undefined source vector and trips -Wmaybe-uninitialized.
  return (VecD)_mm512_mask_i64gather_pd(_mm512_setzero_pd(), (__mmask8)-1,
                                        (__m512i)idx, p, 8);
#elif SELEST_SIMD_WIDTH == 4 && defined(__AVX2__)
  return (VecD)_mm256_i64gather_pd(p, (__m256i)idx, 8);
#else
  VecD v;
  for (int i = 0; i < kW; ++i) v[i] = p[idx[i]];
  return v;
#endif
}

inline bool AnyTrue(VecI m) {
  int64_t acc = 0;
  for (int i = 0; i < kW; ++i) acc |= m[i];
  return acc != 0;
}

inline bool AllTrue(VecI m) {
  int64_t acc = -1;
  for (int i = 0; i < kW; ++i) acc &= m[i];
  return acc != 0;
}

inline int64_t MaxLane(VecI v) {
  int64_t m = v[0];
  for (int i = 1; i < kW; ++i) m = v[i] > m ? v[i] : m;
  return m;
}

// Clamps indices into [0, n) so inactive lanes gather a valid (ignored)
// address.
inline VecI ClampIndex(VecI idx, int64_t n) {
  const VecI hi = BroadcastI(n - 1);
  const VecI over = idx > hi;
  idx = over ? hi : idx;
  const VecI zero = {};
  const VecI under = idx < zero;
  return under ? zero : idx;
}

// ---------------------------------------------------------------------------
// Vectorized branch-free searches (all lanes over one shared array, so the
// halving schedule — and thus the trip count — is lane-invariant).
// ---------------------------------------------------------------------------

// Four-way rounds, like the scalar BranchFreeLowerBound: the three probes
// of a round are independent gathers that issue together, so the
// latency chain is log4 rounds deep instead of log2. The window length is
// kept lane-invariant (len − 3q covers both the fully-advanced lane's
// remainder q + len mod 4 and the partially-advanced lane's quartile q —
// a slightly-too-wide window still brackets the answer), and the masks are
// monotone, so every lane lands on exactly the std::lower_bound index.
inline VecI LowerBoundV(const double* data, int64_t n, VecD key) {
  VecI base = {};
  if (n <= 0) return base;
  int64_t len = n;
  while (len > 3) {
    const int64_t q = len >> 2;
    const VecD g1 = Gather(data, base + (q - 1));
    const VecD g2 = Gather(data, base + (2 * q - 1));
    const VecD g3 = Gather(data, base + (3 * q - 1));
    const VecI m1 = g1 < key;
    const VecI m2 = g2 < key;
    const VecI m3 = g3 < key;
    base += (m1 & q) + (m2 & q) + (m3 & q);
    len -= 3 * q;
  }
  // Finish the ≤3-wide window with independent probes: base+k stays in
  // bounds for k < len (base + len <= n is a loop invariant), and the
  // running AND counts the leading run of advancing probes — exactly the
  // chained one-at-a-time walk, minus the serial gather latencies.
  VecI adv = {};
  VecI run = BroadcastI(-1);
  for (int64_t k = 0; k < len; ++k) {
    const VecD probe = Gather(data, base + k);
    run &= probe < key;
    adv -= run;  // run lanes are -1 while still advancing
  }
  return base + adv;
}

inline VecI UpperBoundV(const double* data, int64_t n, VecD key) {
  VecI base = {};
  if (n <= 0) return base;
  int64_t len = n;
  while (len > 3) {
    const int64_t q = len >> 2;
    const VecD g1 = Gather(data, base + (q - 1));
    const VecD g2 = Gather(data, base + (2 * q - 1));
    const VecD g3 = Gather(data, base + (3 * q - 1));
    // ~(key < probe), not probe <= key: the two differ on NaN keys, and
    // this search must return exactly BranchFreeUpperBound's (= std's)
    // index for every lane.
    const VecI m1 = ~(key < g1);
    const VecI m2 = ~(key < g2);
    const VecI m3 = ~(key < g3);
    base += (m1 & q) + (m2 & q) + (m3 & q);
    len -= 3 * q;
  }
  VecI adv = {};
  VecI run = BroadcastI(-1);
  for (int64_t k = 0; k < len; ++k) {
    const VecD probe = Gather(data, base + k);
    run &= ~(key < probe);
    adv -= run;
  }
  return base + adv;
}

// ---------------------------------------------------------------------------
// Scalar-replica arithmetic helpers (exact operation order).
// ---------------------------------------------------------------------------

// std::clamp(v, 0.0, 1.0) — (v < lo) ? lo : (hi < v) ? hi : v.
inline VecD Clamp01(VecD v) {
  const VecD zero = {};
  const VecD one = BroadcastD(1.0);
  const VecI below = v < zero;
  VecD r = below ? zero : v;
  const VecI above = one < r;
  return above ? one : r;
}

// Kernel::Cdf for Epanechnikov: 0 below −1, 1 above +1, else
// 0.5 + 0.25·(3t − t³) with t³ evaluated as (t·t)·t, exactly as the
// scalar code in density/kernel.cc.
inline VecD EpanechnikovCdf(VecD t) {
  const VecD t3 = (t * t) * t;
  const VecD poly = BroadcastD(0.5) + BroadcastD(0.25) * (BroadcastD(3.0) * t - t3);
  const VecD zero = {};
  const VecD one = BroadcastD(1.0);
  const VecI low = t <= BroadcastD(-1.0);
  const VecI high = t >= one;
  VecD r = low ? zero : poly;
  r = high ? one : r;
  return r;
}

// ---------------------------------------------------------------------------
// histogram_block: BinnedDensity::Selectivity, one query per lane.
// ---------------------------------------------------------------------------

void HistogramBlock(const double* edges, const double* counts,
                    int64_t num_bins, double total_count, const double* a,
                    const double* b, double* out) {
  const VecD av = LoadD(a);
  const VecD bv = LoadD(b);
  const int64_t num_edges = num_bins + 1;

  // Starting bin: lower_bound on the edges, stepped back one unless at the
  // front (the scalar path's atom-at-`a` rule).
  const VecI first = LowerBoundV(edges, num_edges, av);
  const VecI zero_i = {};
  const VecI at_front = first == zero_i;
  const VecI start = at_front ? zero_i : first - 1;

  const VecI nbins = BroadcastI(num_bins);
  const VecI last_bin = BroadcastI(num_bins - 1);
  const VecD zero = {};
  VecD mass = zero;
  // The walk visits consecutive bins, so each trip's high edge is the next
  // trip's low edge: carry it across iterations instead of re-gathering.
  // Exhausted lanes hold a stale clamped (ic, lo); their contributions are
  // masked off below, so the stale values never reach `mass`.
  VecI ic = ClampIndex(start, num_bins);
  VecD lo = Gather(edges, ic);
  for (int64_t j = 0;; ++j) {
    const VecI i = start + j;
    const VecI in_range = i < nbins;
    const VecD hi = Gather(edges, ic + 1);
    // The walk stops at the first bin past the query; edges ascend, so
    // every lane's active mask is monotone and the loop ends when all
    // lanes have passed their last overlapping bin.
    const VecI active = in_range & (lo <= bv);
    if (!AnyTrue(active)) break;
    const VecD cnt = Gather(counts, ic);
    const VecD width = hi - lo;
    // Regular bin: count · overlap/width, added only when overlap > 0.
    const VecI hi_first = hi < bv;
    const VecD mn = hi_first ? hi : bv;  // std::min(b, hi)
    const VecI lo_second = av < lo;
    const VecD mx = lo_second ? lo : av;  // std::max(a, lo)
    const VecD overlap = mn - mx;
    // Atom bin (width <= 0): full count iff a <= lo <= b.
    const VecI atom = width <= zero;
    const VecI atom_in = (lo >= av) & (lo <= bv);
    const VecD atom_contrib = atom_in ? cnt : zero;
    // Interior bins of a multi-bin query are fully covered: overlap and
    // width come from the same subtraction, and IEEE x/x == 1.0 exactly
    // for finite nonzero x, so count · (overlap/width) is just the count.
    // When every lane is covered, an atom, or inactive, skip the vector
    // divide — the dominant walk cost — with a bit-identical result.
    VecD regular_contrib;
    const VecI full = overlap == width;
    if (AllTrue(full | atom | ~active)) {
      regular_contrib = cnt;
    } else {
      const VecD regular = cnt * (overlap / width);
      // Matches the scalar `if (overlap <= 0.0) continue;` — NOT
      // overlap > 0: a NaN bound makes the overlap NaN, which the scalar
      // accumulates.
      const VecI skip_bin = overlap <= zero;
      regular_contrib = skip_bin ? zero : regular;
    }
    VecD contrib = atom ? atom_contrib : regular_contrib;
    contrib = active ? contrib : zero;
    mass += contrib;
    const VecI step = ic < last_bin;
    ic = step ? ic + 1 : ic;
    lo = hi;  // stale for clamped lanes, which are inactive from here on
  }

  const VecD total = BroadcastD(total_count);
  VecD result = Clamp01(mass / total);
  const VecI inverted = av > bv;
  result = inverted ? zero : result;
  StoreD(out, result);
}

// ---------------------------------------------------------------------------
// sorted_count_block: SamplingEstimator::EstimateSelectivity.
// ---------------------------------------------------------------------------

void SortedCountBlock(const double* sorted, int64_t n, const double* a,
                      const double* b, double* out) {
  const VecD av = LoadD(a);
  const VecD bv = LoadD(b);
  const VecI lo = LowerBoundV(sorted, n, av);
  const VecI hi = UpperBoundV(sorted, n, bv);
  const VecD matched = __builtin_convertvector(hi - lo, VecD);
  VecD result = matched / BroadcastD(static_cast<double>(n));
  const VecI inverted = av > bv;
  const VecD zero = {};
  result = inverted ? zero : result;
  StoreD(out, result);
}

// ---------------------------------------------------------------------------
// kernel_block: KernelEstimator::EstimateSelectivity (Epanechnikov).
// ---------------------------------------------------------------------------

// CdfSum's fringe scan: continues accumulating `sum` with
// Cdf((b−x)/h) − Cdf((a−x)/h) over sorted[from,to) per lane, one sample
// at a time in index order (masked past each lane's end), preserving the
// scalar loop's exact summation association. The masked-out additions are
// +0.0 onto a non-negative sum, which cannot change its bits.
inline VecD FringeSum(const double* sorted, int64_t n, VecI from, VecI to,
                      VecD av, VecD bv, double h, VecD sum) {
  const VecD hv = BroadcastD(h);
  const VecD zero = {};
  const int64_t trips = MaxLane(to - from);
  for (int64_t j = 0; j < trips; ++j) {
    const VecI idx = from + j;
    const VecI active = idx < to;
    const VecD x = Gather(sorted, ClampIndex(idx, n));
    const VecD diff =
        EpanechnikovCdf((bv - x) / hv) - EpanechnikovCdf((av - x) / hv);
    sum += active ? diff : zero;
  }
  return sum;
}

// CdfSum for a block whose lanes all take the same (wide/narrow) case
// split; `wide` mirrors the scalar `a + radius <= b − radius` test.
inline VecD CdfSumV(const KernelBlockArgs& args, VecD av, VecD bv, bool wide) {
  const double radius = args.radius;
  const VecD rv = BroadcastD(radius);
  VecD sum;
  if (wide) {
    const VecI full_lo =
        LowerBoundV(args.sorted, args.sorted_size, av + rv);
    const VecI full_hi =
        UpperBoundV(args.sorted, args.sorted_size, bv - rv);
    sum = __builtin_convertvector(full_hi - full_lo, VecD);
    const VecI left_lo =
        LowerBoundV(args.sorted, args.sorted_size, av - rv);
    sum = FringeSum(args.sorted, args.sorted_size, left_lo, full_lo, av, bv,
                    args.h, sum);
    const VecI right_hi =
        UpperBoundV(args.sorted, args.sorted_size, bv + rv);
    sum = FringeSum(args.sorted, args.sorted_size, full_hi, right_hi, av, bv,
                    args.h, sum);
  } else {
    const VecI lo = LowerBoundV(args.sorted, args.sorted_size, av - rv);
    const VecI hi = UpperBoundV(args.sorted, args.sorted_size, bv + rv);
    const VecD zero = {};
    sum = FringeSum(args.sorted, args.sorted_size, lo, hi, av, bv, args.h,
                    zero);
  }
  return sum / BroadcastD(args.original_count);
}

// StripTable::CumulativeAt for one strip, all lanes. Requires size >= 2
// and hi > lo (callers special-case the degenerate strips).
inline VecD StripCumulativeAt(const double* cum, int64_t size, double lo,
                              double hi, VecD x) {
  const VecD lov = BroadcastD(lo);
  const VecD hiv = BroadcastD(hi);
  const VecD nodes = BroadcastD(static_cast<double>(size - 1));
  const VecD position = (x - lov) / (hiv - lov) * nodes;
  // Out-of-strip lanes are fully blended below; clamp the raw position
  // first so the float→int conversion stays in range for them too.
  const VecD pzero = {};
  VecD pclamped = (position < pzero) ? pzero : position;
  pclamped = (nodes < pclamped) ? nodes : pclamped;
  const VecI index = __builtin_convertvector(pclamped, VecI);
  const VecD fraction = position - __builtin_convertvector(index, VecD);
  const VecI ig = ClampIndex(index, size - 1);  // gather-safe: ig+1 <= size-1
  const VecD c0 = Gather(cum, ig);
  const VecD c1 = Gather(cum, ig + 1);
  const VecD back = BroadcastD(cum[size - 1]);
  // Reverse priority order of the scalar early returns.
  VecD r = c0 + fraction * (c1 - c0);
  r = (index + 1 >= BroadcastI(size)) ? back : r;
  r = (x >= hiv) ? back : r;
  r = (x <= lov) ? pzero : r;
  return r;
}

// StripTable::Mass(x1, x2) for one strip, all lanes.
inline VecD StripMassV(const double* cum, int64_t size, double lo, double hi,
                       VecD x1, VecD x2) {
  const VecD zero = {};
  if (size < 2) return zero;
  VecD mass;
  if (!(hi > lo)) {
    // Degenerate strip: every x is <= lo or >= hi, so CumulativeAt is a
    // two-way select with the scalar's check order (x <= lo wins).
    const VecD back = BroadcastD(cum[size - 1]);
    const VecD lov = BroadcastD(lo);
    const VecD hiv = BroadcastD(hi);
    VecD c2 = (x2 >= hiv) ? back : zero;
    c2 = (x2 <= lov) ? zero : c2;
    VecD c1 = (x1 >= hiv) ? back : zero;
    c1 = (x1 <= lov) ? zero : c1;
    mass = c2 - c1;
  } else {
    mass = StripCumulativeAt(cum, size, lo, hi, x2) -
           StripCumulativeAt(cum, size, lo, hi, x1);
  }
  return (x2 <= x1) ? zero : mass;
}

int KernelBlock(const KernelBlockArgs& args, const double* a, const double* b,
                double* out) {
  const VecD a_raw = LoadD(a);
  const VecD b_raw = LoadD(b);
  // Bail on non-finite bounds: the scalar path's NaN behavior runs through
  // code we do not replicate lane-wise.
  if (!AllTrue((a_raw == a_raw) & (b_raw == b_raw))) return 0;
  const VecD inf = BroadcastD(__builtin_huge_val());
  if (AnyTrue((a_raw == inf) | (a_raw == -inf) | (b_raw == inf) |
              (b_raw == -inf))) {
    return 0;
  }

  // Domain clamp (std::clamp(x, lo, hi) on finite inputs).
  const VecD dlo = BroadcastD(args.domain_lo);
  const VecD dhi = BroadcastD(args.domain_hi);
  VecD av = (a_raw < dlo) ? dlo : a_raw;
  av = (dhi < av) ? dhi : av;
  VecD bv = (b_raw < dlo) ? dlo : b_raw;
  bv = (dhi < bv) ? dhi : bv;

  // Lanes the scalar path zeroes before CdfSum; they still participate in
  // the case-split classification below (their clamped bounds are valid
  // numbers), and their computed value is discarded at the end.
  const VecI zero_lane = (a_raw > b_raw) | (av >= bv);

  const VecD rv = BroadcastD(args.radius);
  VecD result;
  if (!args.boundary_kernel) {
    const VecI wide = (av + rv) <= (bv - rv);
    if (!AllTrue(wide) && AnyTrue(wide)) return 0;  // mixed case split
    result = Clamp01(CdfSumV(args, av, bv, AllTrue(wide)));
  } else {
    VecD total = StripMassV(args.left_cum, args.left_size, args.left_lo,
                            args.left_hi, av, bv);
    const VecD lhi = BroadcastD(args.left_hi);
    const VecD rlo = BroadcastD(args.right_lo);
    const VecD ilo = (av < lhi) ? lhi : av;   // std::max(a, left.hi)
    const VecD ihi = (rlo < bv) ? rlo : bv;   // std::min(b, right.lo)
    const VecI interior = ilo < ihi;
    if (!AllTrue(interior) && AnyTrue(interior)) return 0;
    if (AllTrue(interior)) {
      const VecI wide = (ilo + rv) <= (ihi - rv);
      if (!AllTrue(wide) && AnyTrue(wide)) return 0;
      total += CdfSumV(args, ilo, ihi, AllTrue(wide));
    }
    total += StripMassV(args.right_cum, args.right_size, args.right_lo,
                        args.right_hi, av, bv);
    result = Clamp01(total);
  }

  const VecD zero = {};
  result = zero_lane ? zero : result;
  StoreD(out, result);
  return 1;
}

}  // namespace

const SimdOps* GetOps() {
  static const SimdOps ops = {
      /*width=*/kW,
      /*histogram_block=*/&HistogramBlock,
      /*sorted_count_block=*/&SortedCountBlock,
      /*kernel_block=*/&KernelBlock,
  };
  return &ops;
}

}  // namespace SELEST_SIMD_NAMESPACE
}  // namespace selest
