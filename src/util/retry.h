// Retry with capped exponential backoff and deterministic jitter.
//
// The durable tiers (snapshot store, write-ahead log, background refresh)
// talk to a filesystem that can fail transiently; PR 7 replaces their
// fail-once-keep-stale behavior with a uniform retry discipline:
//
//   * capped exponential backoff: attempt k sleeps
//     min(base << k, max) ticks, scaled by a jitter factor;
//   * deterministic seeded jitter: the factor for attempt k is a pure
//     function of (seed, k), so a test replays the exact delay sequence;
//   * a deadline budget: the whole loop — attempts plus sleeps — gives up
//     once the budget is spent, so a wedged disk cannot wedge the caller;
//   * a retryability gate: only transient codes (kInternal,
//     kResourceExhausted) are retried. Corrupt bytes (kDataLoss), missing
//     files (kNotFound) and contract violations fail immediately —
//     retrying them cannot succeed and only hides the real error.
//
// Ticks are nanoseconds under the default clock/sleep; tests inject both
// to drive the loop without real time passing.
#ifndef SELEST_UTIL_RETRY_H_
#define SELEST_UTIL_RETRY_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/util/status.h"

namespace selest {

struct RetryOptions {
  // Total tries, including the first. 1 disables retrying entirely; 0 is
  // treated as 1.
  size_t max_attempts = 3;
  // Backoff before retry k (k = 1, 2, ...): min(base << (k-1), max) ticks,
  // scaled into [1 - jitter, 1] by the seeded per-attempt draw.
  uint64_t base_delay_ticks = 1'000'000;  // 1 ms in nanosecond ticks
  uint64_t max_delay_ticks = 64'000'000;  // 64 ms cap
  // Fraction of the delay randomized away (0 = fixed delays, 1 = full
  // jitter). Clamped to [0, 1].
  double jitter = 0.5;
  uint64_t seed = 0;
  // Budget across the whole loop, by the injected clock; 0 = unlimited. A
  // retry whose backoff would overrun the budget is not taken.
  uint64_t deadline_ticks = 0;
};

// True for codes that name a transient condition worth retrying
// (kInternal, kResourceExhausted). Deterministic failures — corrupt bytes,
// missing files, invalid arguments — return false.
bool IsRetryableStatus(const Status& status);

// The backoff before retry `attempt` (1-based: the sleep between try k and
// try k+1). Pure function of (options, attempt): capped exponential scaled
// by the seeded jitter draw.
uint64_t BackoffDelayTicks(const RetryOptions& options, size_t attempt);

// Runs `operation` until it succeeds, returns a non-retryable error, the
// attempt budget is spent, or the deadline would be overrun. Returns the
// last status observed. `attempts_out` (may be null) receives the number
// of tries actually made. `sleep` and `clock` default to real nanosecond
// sleeping/steady_clock; tests inject fakes. A clock that steps backwards
// never extends the budget (elapsed time is clamped at 0), so retry loops
// survive non-monotonic time sources.
Status RetryWithBackoff(const RetryOptions& options,
                        const std::function<Status()>& operation,
                        size_t* attempts_out = nullptr,
                        const std::function<void(uint64_t)>& sleep = nullptr,
                        const std::function<uint64_t()>& clock = nullptr);

}  // namespace selest

#endif  // SELEST_UTIL_RETRY_H_
