#include "src/util/numeric.h"

#include <cmath>

#include "src/util/check.h"

namespace selest {
namespace {

double SimpsonRecurse(const std::function<double(double)>& f, double a,
                      double b, double fa, double fm, double fb, double whole,
                      double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double h = b - a;
  const double left = (h / 12.0) * (fa + 4.0 * flm + fm);
  const double right = (h / 12.0) * (fm + 4.0 * frm + fb);
  const double split = left + right;
  if (depth <= 0 || std::fabs(split - whole) <= 15.0 * tol) {
    // Richardson extrapolation of the two estimates.
    return split + (split - whole) / 15.0;
  }
  return SimpsonRecurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         SimpsonRecurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double SimpsonIntegrate(const std::function<double(double)>& f, double a,
                        double b, int intervals) {
  SELEST_CHECK_GT(intervals, 0);
  if (a == b) return 0.0;
  if (intervals % 2 != 0) ++intervals;
  const double h = (b - a) / intervals;
  double sum = f(a) + f(b);
  for (int i = 1; i < intervals; ++i) {
    const double x = a + h * i;
    sum += (i % 2 == 0 ? 2.0 : 4.0) * f(x);
  }
  return sum * h / 3.0;
}

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol) {
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = ((b - a) / 6.0) * (fa + 4.0 * fm + fb);
  constexpr int kMaxDepth = 40;
  return SimpsonRecurse(f, a, b, fa, fm, fb, whole, tol, kMaxDepth);
}

double GoldenSectionMinimize(const std::function<double(double)>& f, double lo,
                             double hi, double tol) {
  SELEST_CHECK_LT(lo, hi);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tol * (std::fabs(c) + std::fabs(d) + 1.0)) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

double GridMinimize(const std::function<double(double)>& f, double lo,
                    double hi, int steps) {
  SELEST_CHECK_GT(lo, 0.0);
  SELEST_CHECK_LT(lo, hi);
  SELEST_CHECK_GE(steps, 2);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  double best_x = lo;
  double best_f = f(lo);
  for (int i = 1; i < steps; ++i) {
    const double x =
        std::exp(log_lo + (log_hi - log_lo) * i / (steps - 1.0));
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  return best_x;
}

double InverseNormalCdf(double p) {
  SELEST_CHECK_GT(p, 0.0);
  SELEST_CHECK_LT(p, 1.0);
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the accurate erfc-based CDF.
  const double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
  const double pdf =
      std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979323846);
  const double u = (cdf - p) / pdf;
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace selest
