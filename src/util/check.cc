#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace selest {
namespace internal {

void CheckFailed(const char* file, int line, const char* message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message);
  std::abort();
}

}  // namespace internal
}  // namespace selest
