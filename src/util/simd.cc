#include "src/util/simd.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace selest {

#if defined(__x86_64__)
namespace simd_avx2 {
const SimdOps* GetOps();
}
namespace simd_avx512 {
const SimdOps* GetOps();
}
#endif

namespace {

// Tier override installed by ScopedSimdTier; -1 = none. A relaxed atomic
// is enough: the contract forbids flipping tiers while a batch is in
// flight, so this only has to be data-race-free, not ordering anything.
std::atomic<int> g_tier_override{-1};

bool HostSupports(SimdTier tier) {
#if defined(__x86_64__)
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdTier::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return tier == SimdTier::kScalar;
#endif
}

// Best host tier capped by the SELEST_SIMD environment variable
// ("scalar" | "avx2" | "avx512"); unknown values are ignored. Detected
// once — changing the variable mid-process has no effect.
SimdTier DetectBaseTier() {
  SimdTier best = SimdTier::kScalar;
  if (HostSupports(SimdTier::kAvx2)) best = SimdTier::kAvx2;
  if (HostSupports(SimdTier::kAvx512)) best = SimdTier::kAvx512;
  if (const char* cap = std::getenv("SELEST_SIMD")) {
    if (std::strcmp(cap, "scalar") == 0) {
      best = SimdTier::kScalar;
    } else if (std::strcmp(cap, "avx2") == 0 && best > SimdTier::kAvx2) {
      best = SimdTier::kAvx2;
    } else if (std::strcmp(cap, "avx512") == 0) {
      // Already the ceiling; nothing to cap.
    }
  }
  return best;
}

SimdTier BaseTier() {
  static const SimdTier tier = DetectBaseTier();
  return tier;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool SimdTierSupported(SimdTier tier) { return HostSupports(tier); }

SimdTier ActiveSimdTier() {
  const int override_tier = g_tier_override.load(std::memory_order_relaxed);
  if (override_tier >= 0) return static_cast<SimdTier>(override_tier);
  return BaseTier();
}

const SimdOps* SimdOpsForTier(SimdTier tier) {
  if (!HostSupports(tier)) return nullptr;
#if defined(__x86_64__)
  switch (tier) {
    case SimdTier::kScalar:
      return nullptr;
    case SimdTier::kAvx2:
      return simd_avx2::GetOps();
    case SimdTier::kAvx512:
      return simd_avx512::GetOps();
  }
#endif
  return nullptr;
}

const SimdOps* ActiveSimdOps() { return SimdOpsForTier(ActiveSimdTier()); }

ScopedSimdTier::ScopedSimdTier(SimdTier tier) {
  assert(SimdTierSupported(tier));
  previous_ = g_tier_override.exchange(static_cast<int>(tier),
                                       std::memory_order_relaxed);
}

ScopedSimdTier::~ScopedSimdTier() {
  g_tier_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace selest
