// Numeric helpers: quadrature and 1-D minimization.
//
// Quadrature backs the boundary-kernel selectivity integrals (§3.2.1) and
// the AMISE functionals R(f'), R(f'') for known densities (§4); the golden
// section search backs the oracle smoothing-parameter selector (§5.2).
#ifndef SELEST_UTIL_NUMERIC_H_
#define SELEST_UTIL_NUMERIC_H_

#include <functional>

namespace selest {

// Integrates f over [a, b] with composite Simpson's rule on `intervals`
// subintervals (rounded up to even). Exact for cubics on each subinterval.
double SimpsonIntegrate(const std::function<double(double)>& f, double a,
                        double b, int intervals = 128);

// Adaptive Simpson quadrature to absolute tolerance `tol`. Bounded recursion
// depth; falls back to the non-adaptive estimate at the depth limit.
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-10);

// Minimizes a unimodal function over [lo, hi] by golden-section search.
// Returns the abscissa of the minimum with tolerance `tol` (relative to the
// interval width). For non-unimodal f this still converges, to a local
// minimum.
double GoldenSectionMinimize(const std::function<double(double)>& f, double lo,
                             double hi, double tol = 1e-6);

// Minimizes f over a log-spaced grid of `steps` points in [lo, hi] and
// returns the best abscissa. Robust for multi-modal objectives such as the
// empirical MRE as a function of the smoothing parameter; commonly followed
// by a golden-section refinement around the winner.
double GridMinimize(const std::function<double(double)>& f, double lo,
                    double hi, int steps);

// Inverse standard normal CDF (quantile function), |error| < 1.2e-9
// (Acklam's rational approximation with one Halley refinement step).
// Requires 0 < p < 1. Backs the confidence intervals of the online
// estimators.
double InverseNormalCdf(double p);

}  // namespace selest

#endif  // SELEST_UTIL_NUMERIC_H_
