#include "src/durability/recovery_manager.h"

#include <algorithm>
#include <utility>

#include "src/est/estimator_snapshot.h"
#include "src/util/serialize.h"

namespace selest {

std::vector<uint8_t> EncodeSnapshotMark(uint64_t covered_sequence,
                                        uint64_t generation,
                                        uint32_t snapshot_crc) {
  ByteWriter writer;
  writer.WriteU64(covered_sequence);
  writer.WriteU64(generation);
  writer.WriteU32(snapshot_crc);
  return writer.TakeBytes();
}

StatusOr<SnapshotMark> DecodeSnapshotMark(std::span<const uint8_t> payload) {
  ByteReader reader(std::vector<uint8_t>(payload.begin(), payload.end()));
  SnapshotMark mark;
  SELEST_ASSIGN_OR_RETURN(mark.covered_sequence, reader.ReadU64());
  SELEST_ASSIGN_OR_RETURN(mark.generation, reader.ReadU64());
  SELEST_ASSIGN_OR_RETURN(mark.snapshot_crc, reader.ReadU32());
  if (!reader.AtEnd()) {
    return InvalidArgumentError("snapshot mark has trailing bytes");
  }
  return mark;
}

std::vector<uint8_t> EncodeRowBatch(std::span<const double> rows) {
  ByteWriter writer;
  writer.WriteDoubleVector(rows);
  return writer.TakeBytes();
}

StatusOr<std::vector<double>> DecodeRowBatch(
    std::span<const uint8_t> payload) {
  ByteReader reader(std::vector<uint8_t>(payload.begin(), payload.end()));
  SELEST_ASSIGN_OR_RETURN(std::vector<double> rows,
                          reader.ReadDoubleVector());
  if (!reader.AtEnd()) {
    return InvalidArgumentError("row batch has trailing bytes");
  }
  return rows;
}

StatusOr<RecoveredColumn> RecoveryManager::Recover(
    const CatalogKey& key, const WriteAheadLog& wal, const Domain& domain,
    const EstimatorConfig& config) const {
  RecoveredColumn recovered;
  recovered.quarantined_segments = wal.open_stats().segments_quarantined;
  recovered.truncated_bytes = wal.open_stats().truncated_bytes;

  // Pass 1: decode the durable log. Registration must come first; batches
  // keep their (sequence, rows) pairing so the snapshot fast-path can fold
  // only the tail past the proven mark.
  bool registered = false;
  std::vector<std::pair<uint64_t, std::vector<double>>> batches;
  std::vector<SnapshotMark> marks;
  const Status replayed =
      wal.Replay([&](const WalRecord& record) -> Status {
        switch (record.type) {
          case WalRecordType::kRegister: {
            if (registered) {
              return DataLossError(
                  "WAL holds a second registration record; the log was not "
                  "reset on re-registration");
            }
            SELEST_ASSIGN_OR_RETURN(recovered.registration_rows,
                                    DecodeRowBatch(record.payload));
            registered = true;
            return Status::Ok();
          }
          case WalRecordType::kIngest: {
            if (!registered) {
              return DataLossError(
                  "WAL ingest record precedes the registration record");
            }
            SELEST_ASSIGN_OR_RETURN(std::vector<double> rows,
                                    DecodeRowBatch(record.payload));
            batches.emplace_back(record.sequence, std::move(rows));
            return Status::Ok();
          }
          case WalRecordType::kSnapshotMark: {
            SELEST_ASSIGN_OR_RETURN(const SnapshotMark mark,
                                    DecodeSnapshotMark(record.payload));
            marks.push_back(mark);
            return Status::Ok();
          }
        }
        return DataLossError("unknown WAL record type");
      });
  SELEST_RETURN_IF_ERROR(replayed);
  if (!registered) {
    return NotFoundError("WAL for " + key.relation + "." + key.attribute +
                         " holds no registration record; nothing to recover");
  }
  recovered.last_sequence = wal.durable_sequence();
  recovered.total_rows = recovered.registration_rows.size();
  for (const auto& [sequence, rows] : batches) {
    recovered.total_rows += rows.size();
  }
  for (const SnapshotMark& mark : marks) {
    recovered.last_generation =
        std::max(recovered.last_generation, mark.generation);
  }

  // Pass 2: the mergeable accumulator. Probe mergeability with a build
  // from the registration rows — that build doubles as the full-replay
  // starting point, so the probe is never wasted work.
  SELEST_ASSIGN_OR_RETURN(
      std::unique_ptr<SelectivityEstimator> accumulator,
      BuildEstimator(recovered.registration_rows, domain, config));
  if (!accumulator->SupportsMerge()) {
    // Non-mergeable: the caller rebuilds from the replayed reservoir.
    for (auto& [sequence, rows] : batches) {
      recovered.ingest_batches.push_back(std::move(rows));
    }
    return recovered;
  }

  // Prove a snapshot mark against the file on disk: the newest mark whose
  // CRC matches describes the snapshot's exact covered sequence. Loading
  // retries transient errors only — corrupt bytes degrade straight to
  // full replay.
  uint64_t fold_from_sequence = 0;  // fold batches with sequence > this
  if (store_ != nullptr && !marks.empty()) {
    auto file_bytes = ReadBytesFromFile(store_->PathFor(key));
    if (file_bytes.ok()) {
      const uint32_t file_crc = SnapshotContentCrc(file_bytes.value());
      const SnapshotMark* proven = nullptr;
      for (const SnapshotMark& mark : marks) {
        if (mark.snapshot_crc == file_crc &&
            (proven == nullptr ||
             mark.covered_sequence > proven->covered_sequence)) {
          proven = &mark;
        }
      }
      if (proven != nullptr) {
        std::unique_ptr<SelectivityEstimator> loaded;
        const Status status = RetryWithBackoff(
            options_.retry, [&]() -> Status {
              auto snapshot = LoadEstimatorSnapshot(file_bytes.value());
              if (!snapshot.ok()) return snapshot.status();
              loaded = std::move(snapshot).value();
              return Status::Ok();
            });
        if (status.ok() && loaded->SupportsMerge()) {
          accumulator = std::move(loaded);
          fold_from_sequence = proven->covered_sequence;
          recovered.used_snapshot = true;
          recovered.snapshot_sequence = proven->covered_sequence;
        }
      }
    }
  }

  for (auto& [sequence, rows] : batches) {
    if (sequence > fold_from_sequence) {
      SELEST_RETURN_IF_ERROR(accumulator->FoldRows(rows));
    }
    recovered.ingest_batches.push_back(std::move(rows));
  }
  recovered.accumulator = std::move(accumulator);
  return recovered;
}

}  // namespace selest
