// Per-column write-ahead log: the durable ingest substrate.
//
// The live server's crash problem is that ingested rows live only in the
// in-memory accumulator until the next snapshot write-back; process death
// mid-refresh silently discards everything since the last Put. The WAL
// closes that window: Ingest appends the batch here *before* mutating any
// in-memory state, so restart recovery (durability/recovery_manager.h)
// can replay exactly the rows the server acknowledged.
//
// On-disk format (the PR 5 envelope discipline applied per record):
//
//   record  = length u32 | type u32 | sequence u64 | payload | CRC32 u32
//
// where `length` counts the type + sequence + payload bytes and the CRC
// covers the same span, all little-endian. Records live in numbered
// segment files (`wal-00000001.seg`, ...) that rotate once the active
// segment exceeds `segment_bytes`. Sequences are assigned contiguously
// starting at 1 and validated on open.
//
// Open() scans every segment and enforces the recovery taxonomy:
//   * torn tail (truncated or CRC-bad bytes at the end of the *last*
//     segment): the file is truncated back to the last valid record
//     boundary — the classic WAL discipline for a crash mid-append;
//   * an unreadable earlier segment (corruption that is not a tail, or a
//     sequence discontinuity): the segment and every later one are
//     quarantined — renamed to `<name>.quarantine`, never deleted — since
//     records past a hole cannot be replayed consistently.
//
// Durability boundary: Append buffers the record in memory; Sync writes
// the pending bytes and fdatasyncs the segment (data + size, not
// timestamps). Durable records live only in the segment files — Replay
// re-scans them — so memory is bounded by the sync interval, not the log
// length. With `sync_every_append`
// (default) every Append is immediately durable. The guarantee either way
// is exactly "nothing acknowledged by a successful Sync is ever lost" —
// rows in a failed or never-issued Sync may vanish, and recovery then
// truncates any torn prefix of them.
//
// Fault points: `wal/append` fires before a record is buffered (the
// record is wholly lost); `wal/fsync` fires inside Sync and simulates a
// crash mid-write deterministically — half the pending bytes reach the
// file, the rest are dropped — exercising the torn-tail truncation path
// for real. Not thread-safe; the live server serializes access under its
// per-column ingest mutex.
#ifndef SELEST_DURABILITY_WAL_H_
#define SELEST_DURABILITY_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace selest {

enum class WalRecordType : uint32_t {
  // Registration rows of the column (the first record of a fresh log).
  kRegister = 1,
  // One ingested batch, already clamped to the column domain.
  kIngest = 2,
  // A snapshot write-back completed: payload = covered sequence u64,
  // generation number u64, SnapshotContentCrc of the snapshot file u32
  // (the whole-file Crc32 is a constant residue for every valid envelope
  // — see serialize.h). Recovery trusts the newest mark whose CRC matches
  // the snapshot actually on disk (a crash between Put and mark append
  // leaves a newer file with no matching mark, which safely degrades to
  // full replay).
  kSnapshotMark = 3,
};

struct WalRecord {
  uint64_t sequence = 0;
  WalRecordType type = WalRecordType::kIngest;
  std::vector<uint8_t> payload;
};

// What Open() found and repaired; recovery surfaces these as counters.
struct WalOpenStats {
  size_t segments_scanned = 0;
  size_t records_recovered = 0;
  size_t segments_quarantined = 0;
  uint64_t truncated_bytes = 0;  // torn tail removed from the last segment
};

struct WalOptions {
  // Rotate to a new segment once the active one reaches this size.
  size_t segment_bytes = 4u << 20;
  // Sync after every Append. Turning this off batches appends in memory
  // until Sync() — the live server then syncs at refresh boundaries
  // (group commit), trading the durability window for ingest throughput.
  bool sync_every_append = true;
};

class WriteAheadLog {
 public:
  // Opens (creating if needed) the log under `directory`, scanning and
  // repairing existing segments per the taxonomy above. With `reset`, any
  // existing segments are removed first — the fresh-registration path,
  // where the caller is explicitly replacing the column's history.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& directory, const WalOptions& options = {},
      bool reset = false);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Assigns the next sequence number and buffers the record; with
  // sync_every_append, also syncs it to disk before returning.
  // `sequence_out` (may be null) receives the assigned sequence. On error
  // nothing is buffered and the sequence is not consumed. The rvalue
  // overload adopts the payload without copying — the ingest hot path.
  Status Append(WalRecordType type, std::vector<uint8_t>&& payload,
                uint64_t* sequence_out = nullptr);
  Status Append(WalRecordType type, std::span<const uint8_t> payload,
                uint64_t* sequence_out = nullptr);

  // Writes all pending bytes to the active segment, fsyncs it, and
  // rotates when the segment is full. A failed Sync drops the pending
  // bytes (they were never acknowledged durable) and may leave a torn
  // tail, which the next Open truncates.
  Status Sync();

  // Replays every durable record in sequence order by scanning the
  // segment files — the log is not mirrored in memory, so a WAL's
  // footprint stays bounded by the sync interval, not the log length.
  // Records buffered but not yet synced are not visible (frames that
  // reached the file without an acknowledged fsync are skipped by the
  // durable-sequence bound). Stops at the first callback error.
  Status Replay(
      const std::function<Status(const WalRecord&)>& callback) const;

  // Sequence of the last appended record (0 when the log is empty).
  // Includes buffered-but-unsynced records.
  uint64_t last_sequence() const { return last_sequence_; }
  // Sequence of the last record known durable (covered by a successful
  // Sync or recovered from disk on open).
  uint64_t durable_sequence() const { return durable_sequence_; }

  size_t pending_bytes() const { return pending_bytes_; }
  const WalOpenStats& open_stats() const { return open_stats_; }
  const std::string& directory() const { return directory_; }

 private:
  WriteAheadLog(std::string directory, WalOptions options);

  Status OpenActiveSegment();
  std::string SegmentPath(uint64_t index) const;

  std::string directory_;
  WalOptions options_;
  WalOpenStats open_stats_;

  // Records appended but not yet covered by a successful Sync. Durable
  // records live only in the segment files (Replay re-scans them), so the
  // in-memory footprint is bounded by the sync interval, not the log.
  std::vector<WalRecord> pending_records_;

  // Sync encodes the pending records' frames into `scratch_` just before
  // writing. Cleared (capacity kept) every Sync, so steady-state appends
  // never touch cold pages twice.
  std::vector<uint8_t> scratch_;
  size_t pending_bytes_ = 0;  // encoded size of pending_records_
  uint64_t last_sequence_ = 0;
  uint64_t durable_sequence_ = 0;

  uint64_t active_segment_index_ = 1;
  std::FILE* active_segment_ = nullptr;
  size_t active_segment_bytes_ = 0;
  // Bytes of the active segment covered by a successful Sync. When a
  // failed Sync leaves torn bytes past this point, the next Sync
  // truncates back here before writing, so valid records never land
  // after garbage.
  size_t active_segment_durable_bytes_ = 0;
};

}  // namespace selest

#endif  // SELEST_DURABILITY_WAL_H_
