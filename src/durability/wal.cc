#include "src/durability/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "src/exec/fault_injection.h"
#include "src/util/serialize.h"

namespace selest {
namespace {

// Fixed per-record overhead: length u32 + (type u32 + sequence u64) + CRC
// u32. `length` itself counts the type + sequence + payload span.
constexpr size_t kLengthBytes = 4;
constexpr size_t kHeaderBytes = 12;  // type + sequence
constexpr size_t kCrcBytes = 4;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".seg";
constexpr char kQuarantineSuffix[] = ".quarantine";

void AppendU32(std::vector<uint8_t>& bytes, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void AppendU64(std::vector<uint8_t>& bytes, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes.push_back(static_cast<uint8_t>(value >> shift));
  }
}

uint32_t LoadU32(const uint8_t* bytes) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  }
  return value;
}

uint64_t LoadU64(const uint8_t* bytes) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

// Encodes a record frame directly onto the end of `bytes` — the append
// hot path runs once per ingest batch, so the frame is built in place
// instead of through a temporary that would be copied into the pending
// buffer.
void EncodeRecordInto(std::vector<uint8_t>& bytes, WalRecordType type,
                      uint64_t sequence, std::span<const uint8_t> payload) {
  // No reserve here: `bytes` is the accumulating pending buffer, and an
  // exact-size reserve per call would defeat geometric growth (every
  // append would reallocate and copy the whole buffer — quadratic).
  const size_t start = bytes.size();
  AppendU32(bytes, static_cast<uint32_t>(kHeaderBytes + payload.size()));
  AppendU32(bytes, static_cast<uint32_t>(type));
  AppendU64(bytes, sequence);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const uint32_t crc =
      Crc32(std::span<const uint8_t>(bytes).subspan(start + kLengthBytes));
  AppendU32(bytes, crc);
}

// Existing segment files under `directory`, ordered by index. Quarantined
// files are evidence from an earlier recovery and are never re-read.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& directory) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0) continue;
    if (name.size() < std::strlen(kSegmentSuffix) ||
        name.compare(name.size() - std::strlen(kSegmentSuffix),
                     std::string::npos, kSegmentSuffix) != 0) {
      continue;
    }
    const uint64_t index = std::strtoull(
        name.c_str() + std::strlen(kSegmentPrefix), nullptr, 10);
    if (index == 0) continue;
    segments.emplace_back(index, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

bool IsKnownType(uint32_t type) {
  return type == static_cast<uint32_t>(WalRecordType::kRegister) ||
         type == static_cast<uint32_t>(WalRecordType::kIngest) ||
         type == static_cast<uint32_t>(WalRecordType::kSnapshotMark);
}

// One segment's scan outcome: the records parsed off a valid prefix, the
// byte offset where that prefix ends, and whether the remainder (if any)
// parsed cleanly.
struct SegmentScan {
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;
  bool clean = true;  // false when bytes past valid_bytes failed to parse
};

// Parses records until the bytes run out or stop making sense. Sequence
// continuity is validated against `expected_sequence` (0 = accept any
// start, then require +1 steps).
SegmentScan ScanSegment(std::span<const uint8_t> bytes,
                        uint64_t expected_sequence) {
  SegmentScan scan;
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t remaining = bytes.size() - offset;
    if (remaining < kLengthBytes) break;  // torn length prefix
    const uint32_t length = LoadU32(bytes.data() + offset);
    if (length < kHeaderBytes) break;  // nonsense length: corrupt
    if (remaining < kLengthBytes + length + kCrcBytes) break;  // torn body
    const uint8_t* body = bytes.data() + offset + kLengthBytes;
    const uint32_t stored_crc = LoadU32(body + length);
    if (Crc32(std::span<const uint8_t>(body, length)) != stored_crc) break;
    const uint32_t type = LoadU32(body);
    const uint64_t sequence = LoadU64(body + 4);
    if (!IsKnownType(type)) break;
    if (expected_sequence != 0 && sequence != expected_sequence) break;
    WalRecord record;
    record.sequence = sequence;
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(body + kHeaderBytes, body + length);
    scan.records.push_back(std::move(record));
    expected_sequence = sequence + 1;
    offset += kLengthBytes + length + kCrcBytes;
  }
  scan.valid_bytes = offset;
  scan.clean = offset == bytes.size();
  return scan;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string directory, WalOptions options)
    : directory_(std::move(directory)), options_(options) {}

WriteAheadLog::~WriteAheadLog() {
  // Clean shutdown: best-effort flush of anything still buffered. A crash
  // is simulated by abandoning synced state instead (the fault points drop
  // the pending buffer before control ever returns here).
  if (pending_bytes_ > 0) (void)Sync();
  if (active_segment_ != nullptr) std::fclose(active_segment_);
}

std::string WriteAheadLog::SegmentPath(uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return directory_ + "/" + name;
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& directory, const WalOptions& options, bool reset) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return InternalError("cannot create WAL directory " + directory + ": " +
                         ec.message());
  }

  std::vector<std::pair<uint64_t, std::string>> segments =
      ListSegments(directory);

  if (reset) {
    for (const auto& [index, path] : segments) {
      std::filesystem::remove(path, ec);
    }
    segments.clear();
  }

  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(directory, options));

  bool quarantining = false;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [index, path] = segments[i];
    if (quarantining) {
      std::filesystem::rename(path, path + kQuarantineSuffix, ec);
      ++wal->open_stats_.segments_quarantined;
      continue;
    }
    ++wal->open_stats_.segments_scanned;
    auto bytes = ReadBytesFromFile(path);
    if (!bytes.ok()) {
      // Unreadable at the filesystem level: quarantine it and everything
      // after (records past a hole cannot be applied consistently).
      std::filesystem::rename(path, path + kQuarantineSuffix, ec);
      ++wal->open_stats_.segments_quarantined;
      quarantining = true;
      continue;
    }
    const uint64_t expected =
        wal->last_sequence_ == 0 ? 0 : wal->last_sequence_ + 1;
    SegmentScan scan = ScanSegment(bytes.value(), expected);
    const bool is_last = i + 1 == segments.size();
    if (!scan.clean && !is_last) {
      // Corruption in the middle of the log: not a torn tail. Quarantine
      // this segment (its valid prefix included — a half-trusted segment
      // is worse than an honest hole) and everything after it.
      std::filesystem::rename(path, path + kQuarantineSuffix, ec);
      ++wal->open_stats_.segments_quarantined;
      quarantining = true;
      continue;
    }
    if (!scan.clean) {
      // Torn tail of the last segment: truncate back to the last valid
      // record boundary.
      wal->open_stats_.truncated_bytes +=
          bytes.value().size() - scan.valid_bytes;
      std::filesystem::resize_file(path, scan.valid_bytes, ec);
      if (ec) {
        return InternalError("cannot truncate torn WAL tail in " + path +
                             ": " + ec.message());
      }
    }
    if (!scan.records.empty()) {
      wal->last_sequence_ = scan.records.back().sequence;
    }
    wal->open_stats_.records_recovered += scan.records.size();
    wal->active_segment_index_ = index;
    wal->active_segment_bytes_ = scan.valid_bytes;
    wal->active_segment_durable_bytes_ = scan.valid_bytes;
  }
  wal->durable_sequence_ = wal->last_sequence_;

  // Resume appending to the last surviving segment, rotating first if it
  // is already full (or if everything was quarantined — never write past
  // a hole into a reused index).
  if (quarantining || wal->active_segment_bytes_ >= options.segment_bytes) {
    ++wal->active_segment_index_;
    wal->active_segment_bytes_ = 0;
    wal->active_segment_durable_bytes_ = 0;
  }
  SELEST_RETURN_IF_ERROR(wal->OpenActiveSegment());
  return wal;
}

Status WriteAheadLog::OpenActiveSegment() {
  if (active_segment_ != nullptr) {
    std::fclose(active_segment_);
    active_segment_ = nullptr;
  }
  const std::string path = SegmentPath(active_segment_index_);
  active_segment_ = std::fopen(path.c_str(), "ab");
  if (active_segment_ == nullptr) {
    return InternalError("cannot open WAL segment " + path);
  }
  return Status::Ok();
}

Status WriteAheadLog::Append(WalRecordType type,
                             std::vector<uint8_t>&& payload,
                             uint64_t* sequence_out) {
  SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointWalAppend));
  const uint64_t sequence = last_sequence_ + 1;
  WalRecord record;
  record.sequence = sequence;
  record.type = type;
  record.payload = std::move(payload);
  pending_bytes_ +=
      kLengthBytes + kHeaderBytes + record.payload.size() + kCrcBytes;
  pending_records_.push_back(std::move(record));
  last_sequence_ = sequence;
  if (sequence_out != nullptr) *sequence_out = sequence;
  if (options_.sync_every_append) return Sync();
  return Status::Ok();
}

Status WriteAheadLog::Append(WalRecordType type,
                             std::span<const uint8_t> payload,
                             uint64_t* sequence_out) {
  return Append(type, std::vector<uint8_t>(payload.begin(), payload.end()),
                sequence_out);
}

Status WriteAheadLog::Sync() {
  if (pending_records_.empty()) return Status::Ok();

  // A previous failed Sync may have left torn bytes past the durable
  // boundary; cut them off before writing, so valid records never follow
  // garbage within a segment.
  if (active_segment_bytes_ != active_segment_durable_bytes_) {
    (void)std::fflush(active_segment_);
    if (::ftruncate(::fileno(active_segment_),
                    static_cast<off_t>(active_segment_durable_bytes_)) != 0) {
      return InternalError("cannot repair torn WAL segment " +
                           SegmentPath(active_segment_index_));
    }
    active_segment_bytes_ = active_segment_durable_bytes_;
  }

  // Encode the frames of every record past the durable boundary into the
  // reused scratch buffer (clear() keeps its capacity warm).
  scratch_.clear();
  for (const WalRecord& record : pending_records_) {
    EncodeRecordInto(scratch_, record.type, record.sequence, record.payload);
  }

  // Any write failure below means an unknown prefix of the pending frames
  // reached the disk. The acknowledged-durable state rolls back to the
  // last successful Sync: the pending records are dropped (their sequences
  // are reused by the next Append), and the next Open truncates whatever
  // torn prefix actually landed in the file.
  const auto fail = [this](std::string message) {
    if (active_segment_ != nullptr) (void)std::fflush(active_segment_);
    pending_bytes_ = 0;
    pending_records_.clear();
    last_sequence_ = durable_sequence_;
    return InternalError(std::move(message));
  };

  const Status fault = FaultInjector::Check(kFaultPointWalSync);
  if (!fault.ok()) {
    // Simulated crash mid-write: half the pending bytes land in the file
    // (flushed so a subsequent Open actually sees the torn tail), the
    // rest vanish with the process.
    const size_t torn = scratch_.size() / 2;
    if (torn > 0 && active_segment_ != nullptr) {
      (void)std::fwrite(scratch_.data(), 1, torn, active_segment_);
      (void)std::fflush(active_segment_);
      active_segment_bytes_ += torn;  // the torn bytes occupy the file
    }
    return fail(fault.message());
  }

  const size_t written =
      std::fwrite(scratch_.data(), 1, scratch_.size(), active_segment_);
  if (written != scratch_.size()) {
    active_segment_bytes_ += written;
    return fail("short write to WAL segment " +
                SegmentPath(active_segment_index_));
  }
  // fdatasync, not fsync: an append-only segment needs its data and size
  // durable, not its timestamps — skipping the inode-metadata flush is
  // measurably faster on ext4 and loses nothing the recovery scan reads.
  if (std::fflush(active_segment_) != 0 ||
      ::fdatasync(::fileno(active_segment_)) != 0) {
    active_segment_bytes_ += written;
    return fail("fsync failed on WAL segment " +
                SegmentPath(active_segment_index_));
  }
  active_segment_bytes_ += scratch_.size();
  active_segment_durable_bytes_ = active_segment_bytes_;
  pending_bytes_ = 0;
  pending_records_.clear();
  durable_sequence_ = last_sequence_;

  if (active_segment_bytes_ >= options_.segment_bytes) {
    ++active_segment_index_;
    active_segment_bytes_ = 0;
    active_segment_durable_bytes_ = 0;
    SELEST_RETURN_IF_ERROR(OpenActiveSegment());
  }
  return Status::Ok();
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& callback) const {
  // Flush buffered stdio writes so the scan below sees every durable
  // frame (durable bytes were already flushed by Sync; this is belt and
  // braces for the zero-cost case).
  if (active_segment_ != nullptr) (void)std::fflush(active_segment_);
  uint64_t expected = 0;
  for (const auto& [index, path] : ListSegments(directory_)) {
    auto bytes = ReadBytesFromFile(path);
    if (!bytes.ok()) {
      return InternalError("cannot read WAL segment " + path + ": " +
                           bytes.status().message());
    }
    const SegmentScan scan = ScanSegment(bytes.value(), expected);
    for (const WalRecord& record : scan.records) {
      // Frames past the durable boundary reached the file without an
      // acknowledged fsync (a failed Sync's leftovers); they were never
      // acknowledged, so replay stops before them.
      if (record.sequence > durable_sequence_) return Status::Ok();
      expected = record.sequence + 1;
      SELEST_RETURN_IF_ERROR(callback(record));
    }
    // A non-clean scan is the torn tail; nothing replayable follows.
    if (!scan.clean) break;
  }
  return Status::Ok();
}

}  // namespace selest
