// Startup recovery: snapshot + WAL replay → the pre-crash column state.
//
// Given a column's opened WAL (durability/wal.h) and the snapshot store
// (catalog/snapshot_store.h), Recover reconstructs the ingest-side state
// the live server held before the crash:
//
//   1. replay the WAL's durable records: the kRegister row set, every
//      kIngest batch in sequence order, and the kSnapshotMark records;
//   2. pick the newest snapshot mark whose stored CRC matches the
//      snapshot file actually on disk (a crash between the snapshot Put
//      and the mark append leaves a newer file with no matching mark —
//      the mark is then untrusted and recovery degrades to full replay);
//   3. mergeable estimators: load the proven snapshot (with retry, since
//      a transient read error must not force a slow full replay) and fold
//      the ingest batches past its covered sequence — bit-identical to
//      the pre-crash accumulator, because the snapshot round-trip is
//      bit-identical and the fold order is the original ingest order.
//      Without a provable snapshot: rebuild from the registration rows
//      and fold every batch (same fold sequence, same result, just
//      slower);
//   4. non-mergeable estimators get no accumulator (the live server
//      rebuilds from its reservoir, which it repopulates by replaying the
//      same batches through the same seeded reservoir).
//
// Unreadable WAL segments were already quarantined by WriteAheadLog::Open
// (rename, never delete); recovery reports their count so operators can
// distinguish "clean restart" from "restart minus a hole".
#ifndef SELEST_DURABILITY_RECOVERY_MANAGER_H_
#define SELEST_DURABILITY_RECOVERY_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/catalog/snapshot_store.h"
#include "src/data/domain.h"
#include "src/durability/wal.h"
#include "src/est/estimator_factory.h"
#include "src/util/retry.h"

namespace selest {

// Encodes/decodes the kSnapshotMark payload.
std::vector<uint8_t> EncodeSnapshotMark(uint64_t covered_sequence,
                                        uint64_t generation,
                                        uint32_t snapshot_crc);

struct SnapshotMark {
  uint64_t covered_sequence = 0;
  uint64_t generation = 0;
  uint32_t snapshot_crc = 0;
};
StatusOr<SnapshotMark> DecodeSnapshotMark(std::span<const uint8_t> payload);

// Encodes/decodes the kRegister / kIngest payloads (a clamped row batch).
std::vector<uint8_t> EncodeRowBatch(std::span<const double> rows);
StatusOr<std::vector<double>> DecodeRowBatch(std::span<const uint8_t> payload);

struct RecoveryOptions {
  // Wraps the snapshot load; only transient errors retry, corruption
  // falls through to full replay immediately.
  RetryOptions retry;
};

struct RecoveredColumn {
  // The recovered mergeable accumulator; null when the estimator kind
  // does not merge (the caller rebuilds from the replayed reservoir).
  std::unique_ptr<SelectivityEstimator> accumulator;
  // The registration row set and every durable ingest batch after it, in
  // ingest order — the replay source for reservoir and online state.
  std::vector<double> registration_rows;
  std::vector<std::vector<double>> ingest_batches;
  uint64_t total_rows = 0;
  uint64_t last_sequence = 0;
  // Recovery provenance, surfaced into LiveColumnStats.
  bool used_snapshot = false;
  uint64_t snapshot_sequence = 0;   // covered sequence of the proven mark
  uint64_t last_generation = 0;     // newest generation any mark recorded
  size_t quarantined_segments = 0;  // from the WAL open scan
  uint64_t truncated_bytes = 0;     // torn tail removed by the open scan
};

class RecoveryManager {
 public:
  // `store` may be null (no durable snapshot tier): recovery is then
  // always a full replay.
  explicit RecoveryManager(const SnapshotStore* store,
                           RecoveryOptions options = {})
      : store_(store), options_(options) {}

  // Reconstructs the column keyed by `key` from `wal` (already opened,
  // torn tail truncated, bad segments quarantined). kNotFound when the
  // log holds no registration record — there is nothing to recover.
  StatusOr<RecoveredColumn> Recover(const CatalogKey& key,
                                    const WriteAheadLog& wal,
                                    const Domain& domain,
                                    const EstimatorConfig& config) const;

 private:
  const SnapshotStore* store_;
  RecoveryOptions options_;
};

}  // namespace selest

#endif  // SELEST_DURABILITY_RECOVERY_MANAGER_H_
