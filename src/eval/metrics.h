// Error metrics for selectivity estimators (§5.1.2).
//
// For a query file F_D(s) the paper reports the mean relative error
//
//   MRE(D, s) = (1/|F|) Σ_Q | |Q| − σ̂(Q)·|D| | / |Q|
//
// where |Q| is the exact result size. The mean absolute error (in records)
// and the signed per-query error (Fig. 3/10 plot it against the query
// position) are also provided.
#ifndef SELEST_EVAL_METRICS_H_
#define SELEST_EVAL_METRICS_H_

#include <span>
#include <vector>

#include "src/est/selectivity_estimator.h"
#include "src/query/ground_truth.h"
#include "src/query/range_query.h"

namespace selest {

struct ErrorReport {
  // Mean relative error over queries with non-empty exact results.
  double mean_relative_error = 0.0;
  // Mean absolute error in records.
  double mean_absolute_error = 0.0;
  // Largest relative error observed.
  double max_relative_error = 0.0;
  // Relative-error percentiles: a per-query error distribution is far more
  // informative than the mean alone for optimizer risk (a plan chosen on a
  // p99-wrong estimate is the one users notice).
  double p50_relative_error = 0.0;
  double p90_relative_error = 0.0;
  double p99_relative_error = 0.0;
  // Queries skipped because their exact result was empty.
  size_t skipped_empty = 0;
  size_t evaluated = 0;
};

// Evaluates `estimator` on every query against the exact counts.
ErrorReport Evaluate(const SelectivityEstimator& estimator,
                     std::span<const RangeQuery> queries,
                     const GroundTruth& truth);

// The fixed-order reduction shared by the serial and parallel evaluation
// paths: folds per-query exact counts and estimated selectivities into an
// ErrorReport by one serial pass in query order. Because every per-query
// quantity is computed independently of its neighbors, computing the two
// arrays with any degree of parallelism and then reducing here yields a
// report bit-identical to the fully serial path.
ErrorReport AccumulateReport(std::span<const size_t> exact_counts,
                             std::span<const double> estimated_selectivities,
                             size_t num_records);

// One point of the Fig. 3 / Fig. 10 curves.
struct PositionalError {
  double position = 0.0;        // query center
  double signed_error = 0.0;    // σ̂·N − |Q|, in records
  double relative_error = 0.0;  // |signed_error| / |Q| (0 if |Q| = 0)
  size_t exact_count = 0;
};

// Per-query signed errors, for error-vs-position plots.
std::vector<PositionalError> EvaluateByPosition(
    const SelectivityEstimator& estimator, std::span<const RangeQuery> queries,
    const GroundTruth& truth);

}  // namespace selest

#endif  // SELEST_EVAL_METRICS_H_
