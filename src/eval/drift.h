// Drift replay: query-driven vs static estimators under a shifting column.
//
// The paper's comparison (and our golden figures) scores estimators
// against a frozen dataset; every static estimator decays silently the
// moment the data moves. This engine makes that decay measurable: it
// replays a seeded query workload while the underlying column drifts
// through one of three scenarios —
//
//   kAbruptSwap   — the distribution is swapped wholesale mid-replay
//                   (normal(30, 8) → normal(72, 5));
//   kLinearShift  — the mean slides linearly between the same endpoints;
//   kZipfSweep    — a discrete Zipf column whose skew parameter sweeps
//                   0.4 → 1.6 (mass migrates into the head).
//
// Static estimators are built once from a sample of the *initial* data
// and only predict. Query-driven estimators start from the uniform prior,
// predict, then observe the true selectivity of each executed query. Per
// estimator the replay records the rolling-window MRE after every query —
// the error-vs-queries-observed curve of ROADMAP item 2 — plus the
// convergence point where a query-driven curve drops below the best
// static curve for the remainder of the replay.
//
// Everything is seeded and deterministic: same config, same curves.
#ifndef SELEST_EVAL_DRIFT_H_
#define SELEST_EVAL_DRIFT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace selest {

enum class DriftScenario {
  kAbruptSwap,
  kLinearShift,
  kZipfSweep,
};

const char* DriftScenarioName(DriftScenario scenario);

struct DriftConfig {
  DriftScenario scenario = DriftScenario::kAbruptSwap;
  uint64_t seed = 17;
  // Rows materialized per drift step.
  size_t rows = 20000;
  // Queries replayed (predict → learn) across the whole drift.
  size_t num_queries = 600;
  // Distinct data states the drift passes through; the replay advances one
  // step every num_queries / num_steps queries.
  size_t num_steps = 12;
  // Rolling window (in queries) for the MRE curves.
  size_t window = 60;
  // Grid resolution of the query-driven estimators.
  int num_bins = 64;
  // Sample size the static estimators are built from (initial data).
  size_t static_sample_size = 2000;
};

// One estimator's error-vs-queries curve over the replay.
struct DriftCurve {
  std::string estimator;
  bool query_driven = false;
  // Rolling MRE over the trailing `window` queries, one point per query
  // (queries whose exact result is empty are skipped, as in eval/metrics).
  std::vector<double> windowed_mre;
  double final_mre = 0.0;    // windowed MRE at the end of the replay
  double overall_mre = 0.0;  // MRE over every valid query of the replay
  // 1-based count of observed queries after which this curve stays at or
  // below the best static curve for the rest of the replay; 0 when it
  // always was, num_queries + 1 when it never converges. Meaningful for
  // query-driven curves (static curves compare against their own best).
  size_t convergence_query = 0;
  // Mean wall time of one EstimateSelectivity call during the replay.
  double mean_estimate_ns = 0.0;
};

struct DriftResult {
  DriftScenario scenario;
  size_t num_queries = 0;
  std::vector<DriftCurve> curves;
  // Name and final windowed MRE of the best (lowest final) static curve.
  std::string best_static;
  double best_static_final_mre = 0.0;
};

// Runs one drift replay. Deterministic for a fixed config.
StatusOr<DriftResult> RunDriftReplay(const DriftConfig& config);

// Writes the results in google-benchmark shape (one "benchmarks" row per
// scenario × estimator carrying final/overall MRE and the convergence
// query) plus a "drift" array with downsampled error-vs-queries curves.
// The file is diffable by tools/bench_diff.py, which flags regressions in
// the convergence point alongside the timing ratios.
Status WriteDriftJson(const std::vector<DriftResult>& results,
                      const std::string& path);

}  // namespace selest

#endif  // SELEST_EVAL_DRIFT_H_
