// The registry of Table 2 data files (and their synthetic stand-ins).
//
// Artificial files (u/n/e) follow the paper exactly: 100,000 records on the
// integer domain [0, 2^p − 1], the Normal mapped so its mean sits at the
// domain center, out-of-domain records discarded. The real files are
// replaced by generators with the same statistical character (see
// DESIGN.md §1.3): arap1/arap2 by street-network endpoints, rr1/rr2 by
// polyline vertices, iw (= "ci" in Fig. 8/12) by spiky survey weights.
#ifndef SELEST_EVAL_PAPER_DATA_H_
#define SELEST_EVAL_PAPER_DATA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace selest {

struct PaperFileSpec {
  std::string name;          // e.g. "n(20)"
  std::string distribution;  // e.g. "Normal" or "street endpoints, 1st dim."
  int bits = 0;              // domain parameter p
  size_t records = 0;
};

// Every file of Table 2, in the paper's order.
const std::vector<PaperFileSpec>& PaperFileSpecs();

// All registered file names.
std::vector<std::string> PaperFileNames();

// The files used by the headline comparisons (Figs. 8, 9, 11, 12): the
// large-domain synthetic files plus all "real" stand-ins.
std::vector<std::string> HeadlineFileNames();

// Generates the named data file. Deterministic for a fixed (name, seed).
// NOT_FOUND for unknown names.
StatusOr<Dataset> MakePaperDataset(const std::string& name,
                                   uint64_t seed = 42);

}  // namespace selest

#endif  // SELEST_EVAL_PAPER_DATA_H_
