#include "src/eval/drift.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>

#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/feedback/feedback_histogram.h"
#include "src/feedback/reconstructed_distribution.h"
#include "src/online/online_learning.h"
#include "src/query/ground_truth.h"
#include "src/sample/sampler.h"
#include "src/util/random.h"

namespace selest {
namespace {

// Endpoints of the continuous scenarios' drift.
constexpr double kStartMean = 30.0;
constexpr double kStartSigma = 8.0;
constexpr double kEndMean = 72.0;
constexpr double kEndSigma = 5.0;
// Zipf sweep endpoints.
constexpr double kStartSkew = 0.4;
constexpr double kEndSkew = 1.6;
constexpr int kZipfValues = 1024;

Domain ScenarioDomain(DriftScenario scenario) {
  return scenario == DriftScenario::kZipfSweep ? BitDomain(10)
                                               : ContinuousDomain(0.0, 100.0);
}

// Drift position in [0, 1] at `step` of `num_steps` states.
double StepPosition(size_t step, size_t num_steps) {
  if (num_steps <= 1) return 0.0;
  return static_cast<double>(step) / static_cast<double>(num_steps - 1);
}

Dataset MaterializeStep(const DriftConfig& config, const Domain& domain,
                        size_t step) {
  // Each step seeds its own stream so a step's rows do not depend on how
  // many queries the replay ran before reaching it.
  Rng rng(config.seed ^ (0x9e3779b97f4a7c15ull * (step + 1)));
  const double position = StepPosition(step, config.num_steps);
  switch (config.scenario) {
    case DriftScenario::kAbruptSwap: {
      const bool swapped = position >= 0.5;
      const NormalDistribution normal(swapped ? kEndMean : kStartMean,
                                      swapped ? kEndSigma : kStartSigma);
      return GenerateDataset("drift-abrupt", normal, config.rows, domain, rng);
    }
    case DriftScenario::kLinearShift: {
      const double mean = kStartMean + position * (kEndMean - kStartMean);
      const double sigma = kStartSigma + position * (kEndSigma - kStartSigma);
      const NormalDistribution normal(mean, sigma);
      return GenerateDataset("drift-linear", normal, config.rows, domain, rng);
    }
    case DriftScenario::kZipfSweep: {
      const double skew = kStartSkew + position * (kEndSkew - kStartSkew);
      const ZipfDistribution zipf(kZipfValues, skew);
      return GenerateDataset("drift-zipf", zipf, config.rows, domain, rng);
    }
  }
  Rng fallback(config.seed);
  const UniformDistribution uniform(domain.lo, domain.hi);
  return GenerateDataset("drift", uniform, config.rows, domain, fallback);
}

struct Track {
  std::string name;
  bool query_driven = false;
  std::unique_ptr<SelectivityEstimator> estimator;
  std::vector<double> rel_errors;  // NaN where the exact result was empty
  std::vector<double> windowed;
  double total_error = 0.0;
  size_t valid_queries = 0;
  double estimate_ns = 0.0;
};

Status ValidateConfig(const DriftConfig& config) {
  if (config.rows < 100) {
    return InvalidArgumentError("drift replay needs >= 100 rows per step");
  }
  if (config.num_queries < 1 || config.num_steps < 1 || config.window < 1) {
    return InvalidArgumentError(
        "drift replay needs >= 1 query, step, and window");
  }
  if (config.num_bins < 1) {
    return InvalidArgumentError("drift replay needs >= 1 bin");
  }
  if (config.static_sample_size < 2) {
    return InvalidArgumentError("drift replay needs a static sample >= 2");
  }
  return Status::Ok();
}

}  // namespace

const char* DriftScenarioName(DriftScenario scenario) {
  switch (scenario) {
    case DriftScenario::kAbruptSwap:
      return "abrupt-swap";
    case DriftScenario::kLinearShift:
      return "linear-shift";
    case DriftScenario::kZipfSweep:
      return "zipf-sweep";
  }
  return "unknown";
}

StatusOr<DriftResult> RunDriftReplay(const DriftConfig& config) {
  SELEST_RETURN_IF_ERROR(ValidateConfig(config));
  const Domain domain = ScenarioDomain(config.scenario);

  size_t current_step = 0;
  Dataset current = MaterializeStep(config, domain, current_step);

  // Static estimators freeze a sample of the *initial* data — exactly what
  // a catalog that never re-analyzes would serve.
  Rng sample_rng(config.seed + 1);
  const size_t sample_size =
      std::min(config.static_sample_size, current.size());
  const std::vector<double> sample =
      SampleWithoutReplacement(current.values(), sample_size, sample_rng);

  std::vector<Track> tracks;
  const auto add_static = [&](EstimatorConfig estimator_config) -> Status {
    SELEST_ASSIGN_OR_RETURN(std::unique_ptr<SelectivityEstimator> built,
                            BuildEstimator(sample, domain, estimator_config));
    Track track;
    track.name = built->name();
    track.query_driven = false;
    track.estimator = std::move(built);
    tracks.push_back(std::move(track));
    return Status::Ok();
  };
  {
    EstimatorConfig equi_width;
    equi_width.kind = EstimatorKind::kEquiWidth;
    equi_width.smoothing = SmoothingRule::kFixed;
    equi_width.fixed_smoothing = config.num_bins;
    SELEST_RETURN_IF_ERROR(add_static(equi_width));
    EstimatorConfig kernel;
    kernel.kind = EstimatorKind::kKernel;
    kernel.smoothing = SmoothingRule::kNormalScale;
    SELEST_RETURN_IF_ERROR(add_static(kernel));
    EstimatorConfig sampling;
    sampling.kind = EstimatorKind::kSampling;
    SELEST_RETURN_IF_ERROR(add_static(sampling));
  }
  const size_t num_static = tracks.size();

  // Query-driven estimators start from the uniform prior: the curves then
  // show pure learning from feedback, with no head start from the sample.
  const auto add_feedback = [&](std::unique_ptr<SelectivityEstimator> built) {
    Track track;
    track.name = built->name();
    track.query_driven = true;
    track.estimator = std::move(built);
    tracks.push_back(std::move(track));
  };
  {
    FeedbackHistogramOptions feedback_options;
    feedback_options.num_bins = config.num_bins;
    SELEST_ASSIGN_OR_RETURN(FeedbackHistogram feedback,
                            FeedbackHistogram::Create(domain,
                                                      feedback_options));
    add_feedback(std::make_unique<FeedbackHistogram>(std::move(feedback)));
    ReconstructedDistributionOptions reconstructed_options;
    reconstructed_options.num_bins = config.num_bins;
    SELEST_ASSIGN_OR_RETURN(ReconstructedDistributionEstimator reconstructed,
                            ReconstructedDistributionEstimator::Create(
                                domain, reconstructed_options));
    add_feedback(std::make_unique<ReconstructedDistributionEstimator>(
        std::move(reconstructed)));
    OnlineLearningOptions online_options;
    online_options.num_bins = config.num_bins;
    SELEST_ASSIGN_OR_RETURN(
        OnlineLearningEstimator online,
        OnlineLearningEstimator::Create(domain, online_options));
    add_feedback(
        std::make_unique<OnlineLearningEstimator>(std::move(online)));
  }

  // The replay: one seeded query stream shared by every estimator.
  Rng query_rng(config.seed + 2);
  const double width = domain.width();
  for (size_t t = 0; t < config.num_queries; ++t) {
    const size_t step = t * config.num_steps / config.num_queries;
    if (step != current_step) {
      current_step = step;
      current = MaterializeStep(config, domain, current_step);
    }
    // Centers uniform over the domain, widths 2%–12% of it: the paper's
    // low-selectivity band, where histogram decay is most visible.
    const double center = domain.lo + query_rng.NextDouble() * width;
    const double half =
        (0.01 + 0.05 * query_rng.NextDouble()) * width;
    const RangeQuery query{domain.Clamp(center - half),
                           domain.Clamp(center + half)};
    const GroundTruth truth(current);
    const double exact = truth.Selectivity(query);

    for (Track& track : tracks) {
      const auto start = std::chrono::steady_clock::now();
      const double estimate = track.estimator->EstimateSelectivity(query);
      const auto stop = std::chrono::steady_clock::now();
      track.estimate_ns +=
          std::chrono::duration<double, std::nano>(stop - start).count();
      if (exact > 0.0) {
        const double rel = std::abs(estimate - exact) / exact;
        track.rel_errors.push_back(rel);
        track.total_error += rel;
        ++track.valid_queries;
      } else {
        track.rel_errors.push_back(
            std::numeric_limits<double>::quiet_NaN());
      }
      // Learn after predicting: the curve scores what the optimizer saw.
      if (track.query_driven) {
        (void)track.estimator->ObserveTrueSelectivity(query, exact);
      }
    }

    for (Track& track : tracks) {
      const size_t begin = t + 1 > config.window ? t + 1 - config.window : 0;
      double sum = 0.0;
      size_t count = 0;
      for (size_t u = begin; u <= t; ++u) {
        const double rel = track.rel_errors[u];
        if (!std::isnan(rel)) {
          sum += rel;
          ++count;
        }
      }
      // A window of only-empty queries carries the previous value forward.
      track.windowed.push_back(count > 0 ? sum / count
                               : track.windowed.empty()
                                   ? 0.0
                                   : track.windowed.back());
    }
  }

  // Best static curve: the pointwise minimum over the static tracks — the
  // strongest static competitor at every point of the replay.
  std::vector<double> best_static_curve(config.num_queries, 0.0);
  for (size_t t = 0; t < config.num_queries; ++t) {
    double best = tracks[0].windowed[t];
    for (size_t i = 1; i < num_static; ++i) {
      best = std::min(best, tracks[i].windowed[t]);
    }
    best_static_curve[t] = best;
  }

  DriftResult result;
  result.scenario = config.scenario;
  result.num_queries = config.num_queries;
  double best_final = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < num_static; ++i) {
    const double final_mre = tracks[i].windowed.back();
    if (final_mre < best_final) {
      best_final = final_mre;
      result.best_static = tracks[i].name;
    }
  }
  result.best_static_final_mre = best_final;

  for (Track& track : tracks) {
    DriftCurve curve;
    curve.estimator = track.name;
    curve.query_driven = track.query_driven;
    curve.final_mre = track.windowed.back();
    curve.overall_mre = track.valid_queries > 0
                            ? track.total_error / track.valid_queries
                            : 0.0;
    curve.mean_estimate_ns =
        track.estimate_ns / static_cast<double>(config.num_queries);
    // Last point where this curve sits above the best static curve; the
    // query after it is the convergence point.
    size_t last_violation = 0;
    bool violated = false;
    for (size_t t = 0; t < config.num_queries; ++t) {
      if (track.windowed[t] > best_static_curve[t]) {
        last_violation = t;
        violated = true;
      }
    }
    if (!violated) {
      curve.convergence_query = 0;
    } else if (last_violation == config.num_queries - 1) {
      curve.convergence_query = config.num_queries + 1;  // never converged
    } else {
      curve.convergence_query = last_violation + 2;  // 1-based, next query
    }
    curve.windowed_mre = std::move(track.windowed);
    result.curves.push_back(std::move(curve));
  }
  return result;
}

Status WriteDriftJson(const std::vector<DriftResult>& results,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open " + path + " for writing");
  out << "{\n  \"context\": {\"harness\": \"bench_feedback\"},\n"
      << "  \"benchmarks\": [\n";
  bool first = true;
  for (const DriftResult& result : results) {
    for (const DriftCurve& curve : result.curves) {
      if (!first) out << ",\n";
      first = false;
      out << "    {\"name\": \"drift/" << DriftScenarioName(result.scenario)
          << "/" << curve.estimator
          << "\", \"run_type\": \"iteration\", \"iterations\": "
          << result.num_queries << ", \"real_time\": " << curve.mean_estimate_ns
          << ", \"cpu_time\": " << curve.mean_estimate_ns
          << ", \"time_unit\": \"ns\", \"final_mre\": " << curve.final_mre
          << ", \"overall_mre\": " << curve.overall_mre
          << ", \"convergence_query\": " << curve.convergence_query
          << ", \"query_driven\": " << (curve.query_driven ? 1 : 0) << "}";
    }
  }
  out << "\n  ],\n  \"drift\": [\n";
  for (size_t r = 0; r < results.size(); ++r) {
    const DriftResult& result = results[r];
    out << "    {\"scenario\": \"" << DriftScenarioName(result.scenario)
        << "\", \"num_queries\": " << result.num_queries
        << ", \"best_static\": \"" << result.best_static
        << "\", \"best_static_final_mre\": " << result.best_static_final_mre
        << ", \"curves\": [\n";
    // Downsample the curves so the artifact stays reviewable: at most 60
    // points per curve, always keeping the final point.
    const size_t stride = std::max<size_t>(1, result.num_queries / 60);
    for (size_t c = 0; c < result.curves.size(); ++c) {
      const DriftCurve& curve = result.curves[c];
      out << "      {\"estimator\": \"" << curve.estimator
          << "\", \"query_driven\": " << (curve.query_driven ? "true" : "false")
          << ", \"convergence_query\": " << curve.convergence_query
          << ", \"windowed_mre\": [";
      bool first_point = true;
      for (size_t t = 0; t < curve.windowed_mre.size(); ++t) {
        if (t % stride != 0 && t + 1 != curve.windowed_mre.size()) continue;
        if (!first_point) out << ", ";
        first_point = false;
        out << curve.windowed_mre[t];
      }
      out << "]}" << (c + 1 < result.curves.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (r + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  if (!out) return InternalError("short write to " + path);
  return Status::Ok();
}

}  // namespace selest
