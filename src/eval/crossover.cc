#include "src/eval/crossover.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>

namespace selest {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One estimator built against one (distribution, size) source, reused
// across every band of that source.
struct BuiltEstimator {
  std::string name;
  StreamingBuildPath path = StreamingBuildPath::kReservoirSample;
  std::unique_ptr<SelectivityEstimator> estimator;
  double build_seconds = 0.0;
  std::string error;
};

std::string CellName(const EstimatorConfig& config) {
  return EstimatorKindName(config.kind);
}

}  // namespace

CrossoverConfig DefaultCrossoverConfig() {
  CrossoverConfig config;
  config.data = {{"uniform", 0.0, 16}, {"normal", 0.0, 16}, {"zipf", 1.1, 16}};
  config.data_sizes = {10'000, 100'000, 1'000'000};
  config.selectivity_bands = {0.01, 0.02, 0.05, 0.10};
  for (EstimatorKind kind :
       {EstimatorKind::kSampling, EstimatorKind::kUniform,
        EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
        EstimatorKind::kMaxDiff, EstimatorKind::kAverageShifted,
        EstimatorKind::kKernel, EstimatorKind::kHybrid}) {
    EstimatorConfig estimator;
    estimator.kind = kind;
    config.estimators.push_back(estimator);
  }
  return config;
}

StatusOr<CrossoverResult> RunCrossover(const CrossoverConfig& config) {
  if (config.data.empty() || config.data_sizes.empty() ||
      config.selectivity_bands.empty() || config.estimators.empty()) {
    return InvalidArgumentError(
        "crossover sweep needs at least one distribution, size, band and "
        "estimator");
  }
  if (config.queries_per_band == 0) {
    return InvalidArgumentError("crossover sweep needs queries_per_band >= 1");
  }
  CrossoverResult result;
  for (const CrossoverDataSpec& spec : config.data) {
    for (const uint64_t rows : config.data_sizes) {
      SELEST_ASSIGN_OR_RETURN(
          std::unique_ptr<SyntheticColumnSource> source,
          MakeNamedSource(spec.distribution, rows, spec.bits, config.seed,
                          spec.param, config.chunk_rows));

      StreamingBuildOptions options;
      options.sample_size = config.sample_size;
      options.seed = config.seed;
      std::vector<BuiltEstimator> built;
      built.reserve(config.estimators.size());
      for (const EstimatorConfig& estimator_config : config.estimators) {
        BuiltEstimator entry;
        entry.name = CellName(estimator_config);
        const auto start = std::chrono::steady_clock::now();
        auto build = BuildEstimatorStreaming(*source, estimator_config,
                                             options);
        entry.build_seconds = SecondsSince(start);
        if (build.ok()) {
          entry.path = build->path;
          entry.estimator = std::move(build->estimator);
        } else {
          entry.error = build.status().ToString();
        }
        built.push_back(std::move(entry));
      }

      for (const double band : config.selectivity_bands) {
        ProtocolConfig protocol;
        protocol.sample_size = config.sample_size;
        protocol.query_fraction = band;
        protocol.num_queries = config.queries_per_band;
        protocol.seed = config.seed;
        SELEST_ASSIGN_OR_RETURN(const StreamingExperimentSetup setup,
                                TryMakeStreamingSetup(*source, protocol));

        CrossoverFrontierPoint frontier;
        frontier.distribution = spec.distribution;
        frontier.rows = rows;
        frontier.band = band;
        double best_mre = std::numeric_limits<double>::infinity();
        double best_ns = std::numeric_limits<double>::infinity();

        for (const BuiltEstimator& entry : built) {
          CrossoverCell cell;
          cell.distribution = spec.distribution;
          cell.rows = rows;
          cell.band = band;
          cell.estimator = entry.name;
          cell.path = entry.path;
          cell.build_seconds = entry.build_seconds;
          if (!entry.error.empty()) {
            cell.error = entry.error;
            result.cells.push_back(std::move(cell));
            continue;
          }
          const auto start = std::chrono::steady_clock::now();
          const ErrorReport report =
              EvaluateOnStreamingSetup(*entry.estimator, setup);
          const double seconds = SecondsSince(start);
          cell.mean_relative_error = report.mean_relative_error;
          cell.p90_relative_error = report.p90_relative_error;
          cell.evaluated = report.evaluated;
          cell.storage_bytes = entry.estimator->StorageBytes();
          cell.estimate_ns_per_query =
              setup.queries.empty()
                  ? 0.0
                  : 1e9 * seconds / static_cast<double>(setup.queries.size());
          if (report.evaluated > 0) {
            if (cell.mean_relative_error < best_mre) {
              best_mre = cell.mean_relative_error;
              frontier.error_winner = cell.estimator;
              frontier.error_winner_mre = best_mre;
            }
            if (cell.estimate_ns_per_query < best_ns) {
              best_ns = cell.estimate_ns_per_query;
              frontier.latency_winner = cell.estimator;
              frontier.latency_winner_ns = best_ns;
            }
          }
          result.cells.push_back(std::move(cell));
        }
        if (!frontier.error_winner.empty()) {
          result.frontier.push_back(std::move(frontier));
        }
      }
    }
  }
  return result;
}

Status WriteCrossoverJson(const CrossoverResult& result,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open " + path + " for writing");
  out << "{\n  \"context\": {\"harness\": \"bench_crossover\"},\n"
      << "  \"benchmarks\": [\n";
  bool first = true;
  char band_buf[32];
  for (const CrossoverCell& cell : result.cells) {
    if (!cell.error.empty()) continue;  // failed builds have no timing row
    if (!first) out << ",\n";
    first = false;
    std::snprintf(band_buf, sizeof(band_buf), "%g", cell.band);
    out << "    {\"name\": \"crossover/" << cell.distribution << "/n="
        << cell.rows << "/s=" << band_buf << "/" << cell.estimator
        << "\", \"run_type\": \"iteration\", \"iterations\": "
        << cell.evaluated << ", \"real_time\": " << cell.estimate_ns_per_query
        << ", \"cpu_time\": " << cell.estimate_ns_per_query
        << ", \"time_unit\": \"ns\", \"mre\": " << cell.mean_relative_error
        << ", \"p90_re\": " << cell.p90_relative_error
        << ", \"build_ms\": " << 1e3 * cell.build_seconds
        << ", \"storage_bytes\": " << cell.storage_bytes
        << ", \"build_path\": \"" << StreamingBuildPathName(cell.path)
        << "\"}";
  }
  out << "\n  ],\n  \"frontier\": [\n";
  for (size_t i = 0; i < result.frontier.size(); ++i) {
    const CrossoverFrontierPoint& point = result.frontier[i];
    std::snprintf(band_buf, sizeof(band_buf), "%g", point.band);
    out << "    {\"distribution\": \"" << point.distribution
        << "\", \"rows\": " << point.rows << ", \"band\": " << band_buf
        << ", \"error_winner\": \"" << point.error_winner
        << "\", \"error_winner_mre\": " << point.error_winner_mre
        << ", \"latency_winner\": \"" << point.latency_winner
        << "\", \"latency_winner_ns\": " << point.latency_winner_ns << "}"
        << (i + 1 < result.frontier.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  if (!out) return InternalError("short write to " + path);
  return Status::Ok();
}

}  // namespace selest
