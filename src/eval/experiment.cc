#include "src/eval/experiment.h"

#include <limits>

#include "src/eval/parallel_experiment.h"
#include "src/sample/sampler.h"
#include "src/util/check.h"

namespace selest {

StatusOr<ExperimentSetup> TryMakeSetup(const Dataset& data,
                                       const ProtocolConfig& protocol) {
  Rng rng(protocol.seed);
  Rng sample_rng = rng.Fork();
  Rng query_rng = rng.Fork();
  ExperimentSetup setup;
  setup.data = &data;
  SELEST_ASSIGN_OR_RETURN(
      setup.sample, TrySampleWithoutReplacement(
                        data.values(), protocol.sample_size, sample_rng));
  WorkloadConfig workload;
  workload.query_fraction = protocol.query_fraction;
  workload.num_queries = protocol.num_queries;
  SELEST_ASSIGN_OR_RETURN(setup.queries,
                          TryGenerateWorkload(data, workload, query_rng));
  return setup;
}

ExperimentSetup MakeSetup(const Dataset& data,
                          const ProtocolConfig& protocol) {
  auto setup = TryMakeSetup(data, protocol);
  SELEST_CHECK(setup.ok());
  return std::move(setup).value();
}

StatusOr<ErrorReport> RunConfig(const ExperimentSetup& setup,
                                const EstimatorConfig& config) {
  // The parallel path is bit-identical to the serial one at any thread
  // count (fixed-order reduction; see eval/parallel_experiment.h), so the
  // default runner — and with it the oracle objectives below — always goes
  // through it. ParallelExecOptions{.threads = 1} is the serial fallback.
  return RunConfigParallel(setup, config, ParallelExecOptions{});
}

std::function<double(int)> MakeBinCountObjective(const ExperimentSetup& setup,
                                                 EstimatorConfig config) {
  config.smoothing = SmoothingRule::kFixed;
  return [&setup, config](int num_bins) mutable {
    config.fixed_smoothing = static_cast<double>(num_bins);
    auto report = RunConfig(setup, config);
    if (!report.ok()) return std::numeric_limits<double>::infinity();
    return report.value().mean_relative_error;
  };
}

std::function<double(double)> MakeBandwidthObjective(
    const ExperimentSetup& setup, EstimatorConfig config) {
  config.smoothing = SmoothingRule::kFixed;
  return [&setup, config](double bandwidth) mutable {
    config.fixed_smoothing = bandwidth;
    auto report = RunConfig(setup, config);
    if (!report.ok()) return std::numeric_limits<double>::infinity();
    return report.value().mean_relative_error;
  };
}

}  // namespace selest
