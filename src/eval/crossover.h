// The crossover-frontier harness: which estimator wins where?
//
// The paper's figures compare estimators at one data scale; the practical
// question for a catalog is where the win/loss boundaries lie as the data
// grows. This harness sweeps estimator × selectivity band × data size ×
// distribution from one declarative config, entirely out of core (every
// column is a streamed SyntheticColumnSource, so a 10⁸-row cell costs one
// chunk of resident memory), and reduces each (distribution, size, band)
// group to a frontier point: the error winner (lowest MRE) and the
// latency winner (fastest per-query estimation).
//
// bench/bench_crossover.cc drives this from the command line and writes
// BENCH_crossover.json in google-benchmark shape, so tools/bench_diff.py
// diffs crossover sweeps like any other perf artifact.
#ifndef SELEST_EVAL_CROSSOVER_H_
#define SELEST_EVAL_CROSSOVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/column_source.h"
#include "src/est/streaming_build.h"
#include "src/eval/streaming_experiment.h"
#include "src/util/status.h"

namespace selest {

// One synthetic column family, named per data/column_source.h
// (MakeNamedSource): "uniform", "normal", "exponential", "zipf", "census".
struct CrossoverDataSpec {
  std::string distribution = "uniform";
  // Distribution-specific shape parameter (zipf skew, exponential rate,
  // census spike skew); 0 keeps the source's default.
  double param = 0.0;
  // Discrete domain resolution in bits.
  int bits = 16;
};

struct CrossoverConfig {
  std::vector<CrossoverDataSpec> data;
  // Column sizes to sweep (the out-of-core axis: 10⁴ … 10⁸).
  std::vector<uint64_t> data_sizes;
  // Query widths as fractions of the domain (the selectivity bands).
  std::vector<double> selectivity_bands;
  std::vector<EstimatorConfig> estimators;
  size_t queries_per_band = 200;
  size_t sample_size = 2000;
  uint64_t seed = 1;
  size_t chunk_rows = kDefaultChunkRows;
};

// The paper-default sweep: uniform/normal/zipf data, 10⁴…10⁶ rows, the
// four query sizes of §5.1.2, and one config per estimator family.
CrossoverConfig DefaultCrossoverConfig();

// One (distribution, size, band, estimator) measurement.
struct CrossoverCell {
  std::string distribution;
  uint64_t rows = 0;
  double band = 0.0;
  std::string estimator;
  StreamingBuildPath path = StreamingBuildPath::kReservoirSample;
  // Empty when the cell ran; otherwise why the build failed (the cell is
  // then excluded from the frontier).
  std::string error;
  double mean_relative_error = 0.0;
  double p90_relative_error = 0.0;
  double build_seconds = 0.0;
  double estimate_ns_per_query = 0.0;
  size_t storage_bytes = 0;
  size_t evaluated = 0;
};

// The winners of one (distribution, size, band) group.
struct CrossoverFrontierPoint {
  std::string distribution;
  uint64_t rows = 0;
  double band = 0.0;
  std::string error_winner;
  double error_winner_mre = 0.0;
  std::string latency_winner;
  double latency_winner_ns = 0.0;
};

struct CrossoverResult {
  std::vector<CrossoverCell> cells;
  std::vector<CrossoverFrontierPoint> frontier;
};

// Runs the sweep. Estimators are built once per (distribution, size) —
// builds do not depend on the band — and evaluated against each band's
// streamed setup. Structural problems (empty config axes, an unknown
// distribution name) fail the run; a single estimator failing to build
// only voids its cells.
StatusOr<CrossoverResult> RunCrossover(const CrossoverConfig& config);

// Serializes the result as google-benchmark JSON: one "benchmarks" entry
// per cell (real_time = per-query estimation nanoseconds; mre, build_ms
// and storage_bytes ride along as counters) plus a "frontier" array.
// tools/bench_diff.py reads the "benchmarks" part.
Status WriteCrossoverJson(const CrossoverResult& result,
                          const std::string& path);

}  // namespace selest

#endif  // SELEST_EVAL_CROSSOVER_H_
