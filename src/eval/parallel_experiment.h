// Parallel batch evaluation of experiment configurations.
//
// The paper's evaluation (§5) is an embarrassingly parallel sweep:
// thousands of range queries scored against many estimator configurations
// per data file. This runner fans that sweep out across (estimator config ×
// query chunk) tasks on a shared thread pool, with a determinism contract:
//
//   * per-query quantities (exact count, estimated selectivity) are
//     computed independently, each exactly as the serial path computes it;
//   * every floating-point reduction happens after the fan-out in a fixed
//     serial order (AccumulateReport, in query order).
//
// Reports are therefore bit-identical to the serial RunConfig/Evaluate path
// at any thread count. See DESIGN.md, "Execution layer".
#ifndef SELEST_EVAL_PARALLEL_EXPERIMENT_H_
#define SELEST_EVAL_PARALLEL_EXPERIMENT_H_

#include <span>
#include <string>
#include <vector>

#include "src/catalog/live_server.h"
#include "src/catalog/statistics_catalog.h"
#include "src/est/guarded_estimator.h"
#include "src/eval/experiment.h"
#include "src/eval/metrics.h"
#include "src/exec/thread_pool.h"
#include "src/util/status.h"

namespace selest {

struct ParallelExecOptions {
  // 0 → the shared default pool (ThreadPool::DefaultThreadCount() workers);
  // 1 → fully serial, no pool involvement (the serial fallback);
  // N → a dedicated pool of N workers for this call (used by the
  //     determinism tests and the speedup benchmark).
  size_t threads = 0;
  // Query chunks per worker; more chunks even out per-chunk cost skew
  // without affecting results (chunk boundaries never change values).
  size_t chunks_per_thread = 4;
};

// Evaluate() with query chunks fanned across the pool. Bit-identical to
// Evaluate() on the same inputs.
ErrorReport EvaluateParallel(const SelectivityEstimator& estimator,
                             std::span<const RangeQuery> queries,
                             const GroundTruth& truth,
                             const ParallelExecOptions& options = {});

// RunConfig() with parallel evaluation: builds the estimator, then scores
// the setup's queries via EvaluateParallel.
StatusOr<ErrorReport> RunConfigParallel(const ExperimentSetup& setup,
                                        const EstimatorConfig& config,
                                        const ParallelExecOptions& options = {});

// Runs a whole sweep: exact counts are computed once, estimators are built
// in parallel across configs, and estimation fans out over every
// (config, query chunk) pair. Results are returned in config order and are
// bit-identical to calling RunConfig on each config serially.
std::vector<StatusOr<ErrorReport>> RunConfigsParallel(
    const ExperimentSetup& setup, std::span<const EstimatorConfig> configs,
    const ParallelExecOptions& options = {});

// One sweep cell from RunConfigsGuarded: the report is always present
// (filled from whatever the guarded chain answered), annotated with what
// went wrong and how often the guard had to intervene.
struct GuardedCellReport {
  ErrorReport report;
  // Why the requested config is missing from the chain; OK when the
  // primary built and headed the chain.
  Status primary_status;
  // Non-OK when the evaluation fan-out itself failed (an injected
  // `exec/task` fault or a thrown chunk); the report is zeroed then.
  Status eval_status;
  // Degradation counters observed while scoring this cell's queries.
  GuardedStats stats;
  // name() of the guarded chain that produced the report.
  std::string estimator_name;

  bool degraded() const {
    return !primary_status.ok() || !eval_status.ok() || stats.degraded();
  }
};

// RunConfigsParallel with graceful degradation: every config is built via
// BuildGuardedEstimator, so a config that cannot build (or an estimator
// that emits garbage) yields a recorded error plus fallback-chain
// estimates instead of aborting or voiding the sweep. Cells whose primary
// builds cleanly carry reports bit-identical to RunConfigsParallel — the
// guard only rewrites answers it had to repair. Cells are returned in
// config order at any thread count.
std::vector<GuardedCellReport> RunConfigsGuarded(
    const ExperimentSetup& setup, std::span<const EstimatorConfig> configs,
    const ParallelExecOptions& options = {});

// RunConfigsParallel served through a warmed statistics catalog: each
// config is registered under (relation, attribute) with the setup's sample,
// the catalog resolves it (cache → snapshot → rebuild), and the resulting
// estimator scores the setup's queries through the same fan-out. Because a
// catalog rebuild calls BuildEstimator on the registered sample and
// snapshot round-trips are bit-identical, reports match RunConfigsParallel
// bit for bit whether each cell was served cold, from disk, or from cache.
// Registration errors surface per cell in config order.
std::vector<StatusOr<ErrorReport>> RunConfigsServed(
    Catalog& catalog, const std::string& relation, const std::string& attribute,
    const ExperimentSetup& setup, std::span<const EstimatorConfig> configs,
    const ParallelExecOptions& options = {});

// Options for the live-server sweep. With an empty `ingest_rows`, the
// sweep is a pure read workload and its reports are bit-identical to
// RunConfigsServed (and hence RunConfigsParallel): the live registration
// build and the catalog rebuild both call BuildEstimator on the same
// sample, and scoring goes through the same fan-out.
struct LiveSweepOptions {
  ParallelExecOptions exec;
  // Rows folded into every column after registration, before scoring
  // (the mixed read/ingest workload).
  std::vector<double> ingest_rows;
  // Force a synchronous refresh after the ingest so the scored generation
  // reflects the folded rows. A failed refresh keeps the registration
  // generation serving, and the cell reports scores from it (graceful
  // degradation, not an error cell).
  bool refresh_after_ingest = true;
};

// RunConfigsServed through a LiveStatisticsServer: each config is
// registered as a live column with the setup's sample, optionally fed
// `ingest_rows` and refreshed, and the currently served generation scores
// the setup's queries through the shared fan-out. Configs reuse the
// (relation, attribute) slot sequentially — each registration replaces the
// previous config's column. Results are in config order.
std::vector<StatusOr<ErrorReport>> RunConfigsLive(
    LiveStatisticsServer& server, const std::string& relation,
    const std::string& attribute, const ExperimentSetup& setup,
    std::span<const EstimatorConfig> configs,
    const LiveSweepOptions& options = {});

}  // namespace selest

#endif  // SELEST_EVAL_PARALLEL_EXPERIMENT_H_
