// Plain-text reporting: aligned tables and x/y series.
//
// Every bench binary prints the rows/series of its paper figure through
// this module, so outputs stay uniform and diffable.
#ifndef SELEST_EVAL_REPORT_H_
#define SELEST_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace selest {

// An ASCII table with a header row and aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with columns padded to their widest cell.
  std::string Render() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` significant decimals.
std::string FormatDouble(double value, int digits = 4);

// Formats a fraction as a percentage ("12.3%").
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace selest

#endif  // SELEST_EVAL_REPORT_H_
