#include "src/eval/report.h"

#include <cstdio>

#include "src/util/check.h"

namespace selest {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SELEST_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  SELEST_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t rule_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_width, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const {
  const std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string FormatPercent(double fraction, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, 100.0 * fraction);
  return buffer;
}

}  // namespace selest
