// Experiment orchestration: dataset → sample → workload → estimator → MRE.
//
// Reproduces the paper's experimental protocol (§5.1): draw a 2,000-record
// sample without replacement, generate a size-separated query file whose
// positions follow the data distribution, and score estimators by mean
// relative error against exact counts.
#ifndef SELEST_EVAL_EXPERIMENT_H_
#define SELEST_EVAL_EXPERIMENT_H_

#include <functional>
#include <vector>

#include "src/data/dataset.h"
#include "src/est/estimator_factory.h"
#include "src/eval/metrics.h"
#include "src/query/ground_truth.h"
#include "src/query/workload.h"
#include "src/util/status.h"

namespace selest {

// One prepared experiment: dataset + sample + query file. Holds a pointer
// to the dataset, which must outlive the setup.
struct ExperimentSetup {
  const Dataset* data = nullptr;
  std::vector<double> sample;
  std::vector<RangeQuery> queries;

  const Domain& domain() const { return data->domain(); }
};

// Standard protocol parameters (§5.1 defaults).
struct ProtocolConfig {
  size_t sample_size = 2000;
  double query_fraction = 0.01;
  size_t num_queries = 1000;
  uint64_t seed = 1;
};

// Draws the sample and generates the query file. Status-first: a sample
// size exceeding the dataset is kInvalidArgument and workload
// rejection-sampling exhaustion is kResourceExhausted (see
// query/workload.h), never an abort — both are reachable from externally
// supplied data files.
StatusOr<ExperimentSetup> TryMakeSetup(const Dataset& data,
                                       const ProtocolConfig& protocol);

// Aborting form of TryMakeSetup, for protocols already known to fit the
// dataset (the paper benches on the generated stand-ins).
ExperimentSetup MakeSetup(const Dataset& data, const ProtocolConfig& protocol);

// Builds the configured estimator from the setup's sample and evaluates it
// on the setup's queries. Evaluation fans out across the shared thread
// pool; the result is bit-identical to a serial evaluation (see
// eval/parallel_experiment.h for the determinism contract and for the
// batch/sweep entry points with explicit thread control).
StatusOr<ErrorReport> RunConfig(const ExperimentSetup& setup,
                                const EstimatorConfig& config);

// MRE as a function of the histogram bin count, for oracle bin-count
// searches (`config.kind` must be a histogram estimator). Failed builds
// score +inf.
std::function<double(int)> MakeBinCountObjective(const ExperimentSetup& setup,
                                                 EstimatorConfig config);

// MRE as a function of the kernel bandwidth, for oracle bandwidth searches
// (`config.kind` must be kKernel).
std::function<double(double)> MakeBandwidthObjective(
    const ExperimentSetup& setup, EstimatorConfig config);

}  // namespace selest

#endif  // SELEST_EVAL_EXPERIMENT_H_
