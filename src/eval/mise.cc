#include "src/eval/mise.h"

#include <cmath>
#include <vector>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace selest {

double IntegratedSquaredError(const DensityFn& estimate,
                              const Distribution& truth, double lo, double hi,
                              int intervals) {
  SELEST_CHECK_LT(lo, hi);
  return SimpsonIntegrate(
      [&](double x) {
        const double diff = estimate(x) - truth.Pdf(x);
        return diff * diff;
      },
      lo, hi, intervals);
}

double EstimateMise(const DensityEstimatorFactory& factory,
                    const Distribution& truth, const Domain& domain,
                    const MiseOptions& options) {
  SELEST_CHECK_GT(options.trials, 0);
  SELEST_CHECK_GT(options.sample_size, 0u);
  Rng rng(options.seed);
  double total = 0.0;
  for (int trial = 0; trial < options.trials; ++trial) {
    Rng trial_rng = rng.Fork();
    std::vector<double> sample;
    sample.reserve(options.sample_size);
    size_t attempts = 0;
    while (sample.size() < options.sample_size) {
      SELEST_CHECK_LT(attempts, 1000 * options.sample_size);
      ++attempts;
      const double x = truth.Sample(trial_rng);
      if (domain.Contains(x)) sample.push_back(x);
    }
    const DensityFn estimate = factory(sample);
    total += IntegratedSquaredError(estimate, truth, domain.lo, domain.hi,
                                    options.intervals);
  }
  return total / options.trials;
}

double LogLogSlope(std::span<const double> n_values,
                   std::span<const double> errors) {
  SELEST_CHECK_EQ(n_values.size(), errors.size());
  SELEST_CHECK_GE(n_values.size(), 2u);
  const size_t count = n_values.size();
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  for (size_t i = 0; i < count; ++i) {
    SELEST_CHECK_GT(n_values[i], 0.0);
    SELEST_CHECK_GT(errors[i], 0.0);
    const double x = std::log(n_values[i]);
    const double y = std::log(errors[i]);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double n = static_cast<double>(count);
  return (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x);
}

}  // namespace selest
