#include "src/eval/streaming_experiment.h"

#include <cmath>
#include <utility>

#include "src/data/dataset.h"
#include "src/query/streaming_ground_truth.h"
#include "src/query/workload.h"
#include "src/sample/sampler.h"

namespace selest {
namespace {

// The sampling pass doubles as the row validation pass: every later pass
// (fold builds, exact counts) sees rows this pass accepted.
StatusOr<uint64_t> SampleSource(ColumnSource& source,
                                DecayingReservoir& reservoir) {
  source.Reset();
  uint64_t rows = 0;
  for (std::span<const double> chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (size_t i = 0; i < chunk.size(); ++i) {
      if (!std::isfinite(chunk[i]) || !source.domain().Contains(chunk[i])) {
        return InvalidArgumentError(
            "row " + std::to_string(rows + i) + " of " + source.name() +
            " lies outside the declared domain " + source.domain().ToString());
      }
    }
    reservoir.AddBatch(chunk);
    rows += chunk.size();
  }
  return rows;
}

}  // namespace

StatusOr<StreamingExperimentSetup> TryMakeStreamingSetup(
    ColumnSource& source, const ProtocolConfig& protocol) {
  if (protocol.sample_size == 0) {
    return InvalidArgumentError("streaming setup needs sample_size >= 1");
  }
  StreamingExperimentSetup setup;
  setup.source_name = source.name();
  setup.domain = source.domain();

  DecayingReservoir reservoir(protocol.sample_size, /*decay=*/0.0,
                              protocol.seed);
  SELEST_ASSIGN_OR_RETURN(setup.num_records, SampleSource(source, reservoir));
  if (setup.num_records == 0) {
    return InvalidArgumentError("streaming setup needs a non-empty source");
  }
  setup.sample.assign(reservoir.values().begin(), reservoir.values().end());

  // Query centers are drawn from the sample, so placement follows the data
  // distribution through it (the in-memory protocol draws from the full
  // column). Empty-result rejection is deferred to the exact-count pass.
  const Dataset sample_data(setup.source_name, setup.domain, setup.sample);
  WorkloadConfig workload;
  workload.query_fraction = protocol.query_fraction;
  workload.num_queries = protocol.num_queries;
  workload.reject_empty = false;
  Rng rng(protocol.seed);
  Rng query_rng = rng.Fork();
  SELEST_ASSIGN_OR_RETURN(
      std::vector<RangeQuery> queries,
      TryGenerateWorkload(sample_data, workload, query_rng));

  SELEST_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                          StreamingExactCounts(source, queries));
  setup.queries.reserve(queries.size());
  setup.exact_counts.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (counts[i] == 0) {
      ++setup.dropped_empty;
      continue;
    }
    setup.queries.push_back(queries[i]);
    setup.exact_counts.push_back(counts[i]);
  }
  return setup;
}

ErrorReport EvaluateOnStreamingSetup(const SelectivityEstimator& estimator,
                                     const StreamingExperimentSetup& setup) {
  std::vector<double> estimated(setup.queries.size(), 0.0);
  estimator.EstimateSelectivityBatch(setup.queries, estimated);
  return AccumulateReport(setup.exact_counts, estimated,
                          static_cast<size_t>(setup.num_records));
}

StatusOr<ErrorReport> RunConfigStreaming(ColumnSource& source,
                                         const StreamingExperimentSetup& setup,
                                         const EstimatorConfig& config,
                                         const StreamingBuildOptions& options) {
  SELEST_ASSIGN_OR_RETURN(StreamingBuild build,
                          BuildEstimatorStreaming(source, config, options));
  return EvaluateOnStreamingSetup(*build.estimator, setup);
}

}  // namespace selest
