// The paper's experimental protocol, out of core.
//
// experiment.h prepares (sample, query file) from a materialized Dataset;
// this module prepares the same kind of setup from a ColumnSource without
// ever holding the column: the sample comes from one reservoir pass, the
// query file is positioned on the sample (query centers follow the data
// distribution through it), and the exact counts come from the streaming
// ground truth (query/streaming_ground_truth.h). One deviation from the
// in-memory protocol is inherent: a query that turns out empty against
// the full column cannot be cheaply re-drawn mid-stream, so empty queries
// are dropped after exact counting instead of re-drawn during generation
// (ErrorReport already skips them; the setup records how many were
// dropped).
#ifndef SELEST_EVAL_STREAMING_EXPERIMENT_H_
#define SELEST_EVAL_STREAMING_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/data/column_source.h"
#include "src/est/streaming_build.h"
#include "src/eval/experiment.h"
#include "src/eval/metrics.h"
#include "src/query/range_query.h"
#include "src/util/status.h"

namespace selest {

// A prepared streaming experiment. Self-contained (no pointer into the
// source): the source is re-streamed per estimator build, not held.
struct StreamingExperimentSetup {
  std::string source_name;
  Domain domain;
  uint64_t num_records = 0;
  // The reservoir sample, in reservoir slot order.
  std::vector<double> sample;
  // Queries with a non-empty exact result, and those results.
  std::vector<RangeQuery> queries;
  std::vector<size_t> exact_counts;
  // Queries generated but dropped because their exact count was zero.
  size_t dropped_empty = 0;
};

// Prepares sample, query file and exact counts in two streaming passes
// (one for the reservoir, one for the counts). Rows must be finite and
// inside the source's domain — an mmap-backed file whose payload
// contradicts its header fails here, kInvalidArgument.
StatusOr<StreamingExperimentSetup> TryMakeStreamingSetup(
    ColumnSource& source, const ProtocolConfig& protocol);

// Scores an already-built estimator against the setup: batch estimation
// over the query file, then the same fixed-order reduction as the
// in-memory path (AccumulateReport), so a given (estimator, setup) pair
// scores bit-identically however the estimator was built.
ErrorReport EvaluateOnStreamingSetup(const SelectivityEstimator& estimator,
                                     const StreamingExperimentSetup& setup);

// Builds `config` from the source via BuildEstimatorStreaming and scores
// it against the setup. The build options' sample size and seed default
// to the protocol values used for the setup, so estimators see the same
// sample the setup holds.
StatusOr<ErrorReport> RunConfigStreaming(ColumnSource& source,
                                         const StreamingExperimentSetup& setup,
                                         const EstimatorConfig& config,
                                         const StreamingBuildOptions& options);

}  // namespace selest

#endif  // SELEST_EVAL_STREAMING_EXPERIMENT_H_
