// Empirical (mean) integrated squared error against a known density.
//
// Section 4's theory ranks estimators by MISE and predicts the convergence
// rates AMISE(h_EW) = O(n^−2/3) and AMISE(h_K) = O(n^−4/5). This module
// measures the integrated squared error of a fitted density estimate
// against the generating density by quadrature, and averages it over
// repeated samples — the direct empirical counterpart of equation (3).
#ifndef SELEST_EVAL_MISE_H_
#define SELEST_EVAL_MISE_H_

#include <functional>
#include <span>

#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {

// A density estimate as a plain function (adapters below build them from
// Kde / BinnedDensity style objects).
using DensityFn = std::function<double(double)>;

// ∫ (f̂(x) − f(x))² dx over [lo, hi], composite Simpson on `intervals`
// subintervals.
double IntegratedSquaredError(const DensityFn& estimate,
                              const Distribution& truth, double lo, double hi,
                              int intervals = 2048);

struct MiseOptions {
  // Independent samples to average the ISE over.
  int trials = 10;
  // Sample size per trial.
  size_t sample_size = 1000;
  // Quadrature subintervals.
  int intervals = 2048;
  uint64_t seed = 1;
};

// A factory turning one sample into a density estimate. Called once per
// trial.
using DensityEstimatorFactory =
    std::function<DensityFn(std::span<const double> sample)>;

// Empirical MISE: draws `trials` samples of `sample_size` from `truth`
// restricted to `domain` (out-of-domain draws rejected), fits an estimate
// per sample and averages the ISE.
double EstimateMise(const DensityEstimatorFactory& factory,
                    const Distribution& truth, const Domain& domain,
                    const MiseOptions& options);

// Fits a log-log slope: given (n, error) pairs, returns the least-squares
// slope of log(error) against log(n). For a rate O(n^−α) the slope ≈ −α.
double LogLogSlope(std::span<const double> n_values,
                   std::span<const double> errors);

}  // namespace selest

#endif  // SELEST_EVAL_MISE_H_
