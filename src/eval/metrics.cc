#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace selest {

ErrorReport Evaluate(const SelectivityEstimator& estimator,
                     std::span<const RangeQuery> queries,
                     const GroundTruth& truth) {
  std::vector<size_t> exact_counts(queries.size());
  std::vector<double> estimates(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    exact_counts[i] = truth.Count(queries[i]);
    estimates[i] = estimator.EstimateSelectivity(queries[i]);
  }
  return AccumulateReport(exact_counts, estimates, truth.num_records());
}

ErrorReport AccumulateReport(std::span<const size_t> exact_counts,
                             std::span<const double> estimated_selectivities,
                             size_t num_records) {
  SELEST_CHECK_EQ(exact_counts.size(), estimated_selectivities.size());
  ErrorReport report;
  double sum_relative = 0.0;
  double sum_absolute = 0.0;
  std::vector<double> relative_errors;
  relative_errors.reserve(exact_counts.size());
  const double n = static_cast<double>(num_records);
  for (size_t i = 0; i < exact_counts.size(); ++i) {
    const size_t exact = exact_counts[i];
    if (exact == 0) {
      ++report.skipped_empty;
      continue;
    }
    const double estimate = estimated_selectivities[i] * n;
    const double absolute = std::fabs(estimate - static_cast<double>(exact));
    const double relative = absolute / static_cast<double>(exact);
    sum_relative += relative;
    sum_absolute += absolute;
    relative_errors.push_back(relative);
    report.max_relative_error = std::max(report.max_relative_error, relative);
    ++report.evaluated;
  }
  if (report.evaluated > 0) {
    report.mean_relative_error =
        sum_relative / static_cast<double>(report.evaluated);
    report.mean_absolute_error =
        sum_absolute / static_cast<double>(report.evaluated);
    std::sort(relative_errors.begin(), relative_errors.end());
    // Status-first quantiles; `evaluated > 0` guarantees a non-empty set,
    // so a degenerate report keeps its zeroed percentiles instead of
    // aborting the aggregation.
    const auto percentile = [&relative_errors](double q) {
      auto value = TryQuantileSorted(relative_errors, q);
      return value.ok() ? value.value() : 0.0;
    };
    report.p50_relative_error = percentile(0.50);
    report.p90_relative_error = percentile(0.90);
    report.p99_relative_error = percentile(0.99);
  }
  return report;
}

std::vector<PositionalError> EvaluateByPosition(
    const SelectivityEstimator& estimator, std::span<const RangeQuery> queries,
    const GroundTruth& truth) {
  std::vector<PositionalError> errors;
  errors.reserve(queries.size());
  const double n = static_cast<double>(truth.num_records());
  for (const RangeQuery& query : queries) {
    const size_t exact = truth.Count(query);
    const double estimate = estimator.EstimateSelectivity(query) * n;
    PositionalError point;
    point.position = query.center();
    point.exact_count = exact;
    point.signed_error = estimate - static_cast<double>(exact);
    point.relative_error =
        exact == 0 ? 0.0
                   : std::fabs(point.signed_error) / static_cast<double>(exact);
    errors.push_back(point);
  }
  return errors;
}

}  // namespace selest
