#include "src/eval/parallel_experiment.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "src/exec/parallel_for.h"
#include "src/util/check.h"

namespace selest {
namespace {

// Resolves the options to a pool: the shared default pool, a dedicated
// transient pool kept alive by `owned`, or nullptr for the serial path.
ThreadPool* ResolvePool(const ParallelExecOptions& options,
                        std::unique_ptr<ThreadPool>& owned) {
  if (options.threads == 1) return nullptr;
  if (options.threads == 0) return &ThreadPool::Default();
  owned = std::make_unique<ThreadPool>(options.threads);
  return owned.get();
}

size_t NumChunks(const ThreadPool& pool, const ParallelExecOptions& options) {
  return pool.num_threads() * std::max<size_t>(1, options.chunks_per_thread);
}

// EvaluateParallel's body against an already-resolved pool, so sweeps that
// score many estimators resolve once per sweep instead of spawning (and
// joining) a dedicated pool per config.
ErrorReport EvaluateOnPool(const SelectivityEstimator& estimator,
                           std::span<const RangeQuery> queries,
                           const GroundTruth& truth, ThreadPool* pool,
                           const ParallelExecOptions& options) {
  if (pool == nullptr) return Evaluate(estimator, queries, truth);
  std::vector<size_t> exact_counts(queries.size());
  std::vector<double> estimates(queries.size());
  ParallelFor(pool, queries.size(), NumChunks(*pool, options),
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t i = begin; i < end; ++i) {
                  exact_counts[i] = truth.Count(queries[i]);
                }
                estimator.EstimateSelectivityBatch(
                    queries.subspan(begin, end - begin),
                    std::span<double>(estimates).subspan(begin, end - begin));
              });
  return AccumulateReport(exact_counts, estimates, truth.num_records());
}

}  // namespace

ErrorReport EvaluateParallel(const SelectivityEstimator& estimator,
                             std::span<const RangeQuery> queries,
                             const GroundTruth& truth,
                             const ParallelExecOptions& options) {
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = ResolvePool(options, owned);
  return EvaluateOnPool(estimator, queries, truth, pool, options);
}

StatusOr<ErrorReport> RunConfigParallel(const ExperimentSetup& setup,
                                        const EstimatorConfig& config,
                                        const ParallelExecOptions& options) {
  SELEST_CHECK(setup.data != nullptr);
  auto estimator = BuildEstimator(setup.sample, setup.domain(), config);
  if (!estimator.ok()) return estimator.status();
  const GroundTruth truth(*setup.data);
  return EvaluateParallel(*estimator.value(), setup.queries, truth, options);
}

std::vector<StatusOr<ErrorReport>> RunConfigsParallel(
    const ExperimentSetup& setup, std::span<const EstimatorConfig> configs,
    const ParallelExecOptions& options) {
  SELEST_CHECK(setup.data != nullptr);
  std::vector<StatusOr<ErrorReport>> results;
  results.reserve(configs.size());

  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = ResolvePool(options, owned);
  if (pool == nullptr) {
    for (const EstimatorConfig& config : configs) {
      results.push_back(RunConfigParallel(setup, config, options));
    }
    return results;
  }

  const GroundTruth truth(*setup.data);
  const std::span<const RangeQuery> queries(setup.queries);

  // Phase 1 — shared inputs, each parallel on its own axis: the exact
  // counts (identical for every config, so computed once) over query
  // chunks, then the estimator builds over configs.
  std::vector<size_t> exact_counts(queries.size());
  ParallelFor(pool, queries.size(), NumChunks(*pool, options),
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t i = begin; i < end; ++i) {
                  exact_counts[i] = truth.Count(queries[i]);
                }
              });

  using BuildResult = StatusOr<std::unique_ptr<SelectivityEstimator>>;
  std::vector<std::optional<BuildResult>> built(configs.size());
  ParallelFor(pool, configs.size(), configs.size(),
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t c = begin; c < end; ++c) {
                  built[c].emplace(
                      BuildEstimator(setup.sample, setup.domain(), configs[c]));
                }
              });

  // Phase 2 — the (config × query chunk) fan-out. Each task fills its own
  // slice of its config's estimate array; no two tasks share output slots.
  struct EstimationTask {
    size_t config;
    size_t begin;
    size_t end;
  };
  const auto query_chunks =
      SplitRange(queries.size(), NumChunks(*pool, options));
  std::vector<EstimationTask> tasks;
  std::vector<std::vector<double>> estimates(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    if (!built[c]->ok()) continue;
    estimates[c].resize(queries.size());
    for (const auto& [begin, end] : query_chunks) {
      tasks.push_back({c, begin, end});
    }
  }
  ParallelFor(pool, tasks.size(), tasks.size(),
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t t = begin; t < end; ++t) {
                  const EstimationTask& task = tasks[t];
                  const SelectivityEstimator& est = *built[task.config]->value();
                  est.EstimateSelectivityBatch(
                      queries.subspan(task.begin, task.end - task.begin),
                      std::span<double>(estimates[task.config])
                          .subspan(task.begin, task.end - task.begin));
                }
              });

  // Phase 3 — fixed-order reduction, serial and in config order.
  for (size_t c = 0; c < configs.size(); ++c) {
    if (!built[c]->ok()) {
      results.push_back(built[c]->status());
      continue;
    }
    results.push_back(
        AccumulateReport(exact_counts, estimates[c], truth.num_records()));
  }
  return results;
}

std::vector<StatusOr<ErrorReport>> RunConfigsServed(
    Catalog& catalog, const std::string& relation, const std::string& attribute,
    const ExperimentSetup& setup, std::span<const EstimatorConfig> configs,
    const ParallelExecOptions& options) {
  SELEST_CHECK(setup.data != nullptr);
  std::vector<StatusOr<ErrorReport>> results;
  results.reserve(configs.size());
  const GroundTruth truth(*setup.data);
  // One pool for the whole sweep: with options.threads = N this used to
  // spawn and join a dedicated N-worker pool per config, which both churned
  // threads and made the effective parallelism differ from
  // RunConfigsParallel under the same options.
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = ResolvePool(options, owned);
  for (const EstimatorConfig& config : configs) {
    auto key = catalog.RegisterColumn(relation, attribute, setup.domain(),
                                      setup.sample, config);
    if (!key.ok()) {
      results.push_back(key.status());
      continue;
    }
    auto estimator = catalog.GetEstimator(key.value());
    if (!estimator.ok()) {
      results.push_back(estimator.status());
      continue;
    }
    results.push_back(
        EvaluateOnPool(*estimator.value(), setup.queries, truth, pool, options));
  }
  return results;
}

std::vector<StatusOr<ErrorReport>> RunConfigsLive(
    LiveStatisticsServer& server, const std::string& relation,
    const std::string& attribute, const ExperimentSetup& setup,
    std::span<const EstimatorConfig> configs,
    const LiveSweepOptions& options) {
  SELEST_CHECK(setup.data != nullptr);
  std::vector<StatusOr<ErrorReport>> results;
  results.reserve(configs.size());
  const GroundTruth truth(*setup.data);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = ResolvePool(options.exec, owned);
  for (const EstimatorConfig& config : configs) {
    const Status registered = server.RegisterColumn(
        relation, attribute, setup.domain(), config, setup.sample);
    if (!registered.ok()) {
      results.push_back(registered);
      continue;
    }
    if (!options.ingest_rows.empty()) {
      const Status ingested =
          server.Ingest(relation, attribute, options.ingest_rows);
      if (!ingested.ok()) {
        results.push_back(ingested);
        continue;
      }
      if (options.refresh_after_ingest) {
        // A failed refresh is degradation, not a lost cell: the
        // registration generation keeps serving and scores below.
        (void)server.Refresh(relation, attribute);
      }
    }
    auto estimator = server.CurrentEstimator(relation, attribute);
    if (!estimator.ok()) {
      results.push_back(estimator.status());
      continue;
    }
    results.push_back(
        EvaluateOnPool(*estimator.value(), setup.queries, truth, pool,
                       options.exec));
  }
  return results;
}

std::vector<GuardedCellReport> RunConfigsGuarded(
    const ExperimentSetup& setup, std::span<const EstimatorConfig> configs,
    const ParallelExecOptions& options) {
  SELEST_CHECK(setup.data != nullptr);
  std::vector<GuardedCellReport> cells(configs.size());
  if (configs.empty()) return cells;

  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = ResolvePool(options, owned);
  const size_t num_chunks = pool == nullptr ? 1 : NumChunks(*pool, options);

  const GroundTruth truth(*setup.data);
  const std::span<const RangeQuery> queries(setup.queries);

  // Phase 1a — exact counts, once (they are estimator-independent). A
  // failure here (an injected `exec/task` fault) poisons every cell the
  // same way, recorded per cell below.
  std::vector<size_t> exact_counts(queries.size());
  const Status counts_status =
      TryParallelFor(pool, queries.size(), num_chunks,
                     [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
                       for (size_t i = begin; i < end; ++i) {
                         exact_counts[i] = truth.Count(queries[i]);
                       }
                       return Status::Ok();
                     });

  // Phase 1b — guarded builds, serial in config order so the `est/build`
  // fault point sees a schedule-independent hit sequence.
  std::vector<std::unique_ptr<GuardedEstimator>> chains(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    auto build =
        BuildGuardedEstimator(setup.sample, setup.domain(), configs[c]);
    if (!build.ok()) {
      // Nothing can answer (malformed domain): the cell records the error
      // and keeps its zeroed report.
      cells[c].primary_status = build.status();
      cells[c].eval_status = build.status();
      cells[c].estimator_name = "unavailable";
      continue;
    }
    cells[c].primary_status = build.value().primary_status;
    chains[c] = std::move(build.value().estimator);
  }

  // Phase 2 — one fan-out per config (per-config error attribution), each
  // parallel over query chunks. Serial fan-outs share one estimate buffer.
  std::vector<double> estimates(queries.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    if (chains[c] == nullptr) continue;
    GuardedCellReport& cell = cells[c];
    cell.estimator_name = chains[c]->name();
    Status eval = counts_status;
    if (eval.ok()) {
      const GuardedEstimator& chain = *chains[c];
      eval = TryParallelFor(
          pool, queries.size(), num_chunks,
          [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
            chain.EstimateSelectivityBatch(
                queries.subspan(begin, end - begin),
                std::span<double>(estimates).subspan(begin, end - begin));
            return Status::Ok();
          });
    }
    cell.eval_status = eval;
    cell.stats = chains[c]->stats();
    if (eval.ok()) {
      cell.report =
          AccumulateReport(exact_counts, estimates, truth.num_records());
    }
  }
  return cells;
}

}  // namespace selest
