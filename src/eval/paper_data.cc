#include "src/eval/paper_data.h"

#include <functional>

#include "src/data/census.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/data/spatial.h"

namespace selest {
namespace {

constexpr size_t kSyntheticRecords = 100000;
constexpr size_t kArapRecords = 52120;
constexpr size_t kRailRiverRecords = 257942;
constexpr size_t kInstanceWeightRecords = 199523;

uint64_t MixSeed(const std::string& name, uint64_t seed) {
  // FNV-1a over the name, mixed with the user seed, so every file gets an
  // independent deterministic stream.
  uint64_t hash = 1469598103934665603ull;
  for (char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash ^ (seed * 0x9e3779b97f4a7c15ull);
}

Dataset MakeUniform(const std::string& name, int bits, uint64_t seed) {
  const Domain domain = BitDomain(bits);
  Rng rng(MixSeed(name, seed));
  // Over-draw slightly: quantization keeps everything in-domain.
  const UniformDistribution dist(domain.lo, domain.hi);
  return GenerateDataset(name, dist, kSyntheticRecords, domain, rng);
}

Dataset MakeNormal(const std::string& name, int bits, uint64_t seed) {
  const Domain domain = BitDomain(bits);
  Rng rng(MixSeed(name, seed));
  // Mean at the domain center (§5.1.1); ±4σ spans the domain.
  const NormalDistribution dist(0.5 * (domain.lo + domain.hi),
                                domain.width() / 8.0);
  return GenerateDataset(name, dist, kSyntheticRecords, domain, rng);
}

Dataset MakeExponential(const std::string& name, int bits, uint64_t seed) {
  const Domain domain = BitDomain(bits);
  Rng rng(MixSeed(name, seed));
  // Mean at one eighth of the domain: high density at the left boundary,
  // negligible mass discarded on the right.
  const ExponentialDistribution dist(8.0 / domain.width(), 0.0);
  return GenerateDataset(name, dist, kSyntheticRecords, domain, rng);
}

Dataset MakeArapahoe(const std::string& name, Axis axis, int bits,
                     uint64_t seed) {
  // One shared street network underlies both dimensions, like the real
  // county file; the axis and domain resolution differ.
  Rng rng(MixSeed("arapahoe-network", seed));
  StreetNetworkConfig config;
  const std::vector<Point2> points =
      GenerateStreetNetwork(config, kArapRecords, rng);
  return MarginalDataset(name, points, axis, bits, kArapRecords);
}

Dataset MakeRailRiver(const std::string& name, Axis axis, int bits,
                      uint64_t seed) {
  Rng rng(MixSeed("rail-river-network", seed));
  PolylineConfig config;
  const std::vector<Point2> points =
      GeneratePolylines(config, kRailRiverRecords, rng);
  return MarginalDataset(name, points, axis, bits, kRailRiverRecords);
}

Dataset MakeInstanceWeight(const std::string& name, uint64_t seed) {
  Rng rng(MixSeed(name, seed));
  InstanceWeightConfig config;
  return GenerateInstanceWeights(name, config, kInstanceWeightRecords, rng);
}

}  // namespace

const std::vector<PaperFileSpec>& PaperFileSpecs() {
  static const std::vector<PaperFileSpec>& specs =
      *new std::vector<PaperFileSpec>{
          {"u(15)", "Uniform", 15, kSyntheticRecords},
          {"u(20)", "Uniform", 20, kSyntheticRecords},
          {"n(10)", "Normal", 10, kSyntheticRecords},
          {"n(15)", "Normal", 15, kSyntheticRecords},
          {"n(20)", "Normal", 20, kSyntheticRecords},
          {"e(15)", "Exponential", 15, kSyntheticRecords},
          {"e(20)", "Exponential", 20, kSyntheticRecords},
          {"arap1", "street endpoints, 1st dim.", 21, kArapRecords},
          {"arap2", "street endpoints, 2nd dim.", 18, kArapRecords},
          {"rr1(12)", "rail road & rivers, 1st dim.", 12, kRailRiverRecords},
          {"rr1(22)", "rail road & rivers, 1st dim.", 22, kRailRiverRecords},
          {"rr2(12)", "rail road & rivers, 2nd dim.", 12, kRailRiverRecords},
          {"rr2(22)", "rail road & rivers, 2nd dim.", 22, kRailRiverRecords},
          {"iw", "instance weight", 21, kInstanceWeightRecords},
      };
  return specs;
}

std::vector<std::string> PaperFileNames() {
  std::vector<std::string> names;
  for (const PaperFileSpec& spec : PaperFileSpecs()) {
    names.push_back(spec.name);
  }
  return names;
}

std::vector<std::string> HeadlineFileNames() {
  return {"u(20)", "n(20)",   "e(20)",   "arap1",
          "arap2", "rr1(22)", "rr2(22)", "iw"};
}

StatusOr<Dataset> MakePaperDataset(const std::string& name, uint64_t seed) {
  if (name == "u(15)") return MakeUniform(name, 15, seed);
  if (name == "u(20)") return MakeUniform(name, 20, seed);
  if (name == "n(10)") return MakeNormal(name, 10, seed);
  if (name == "n(15)") return MakeNormal(name, 15, seed);
  if (name == "n(20)") return MakeNormal(name, 20, seed);
  if (name == "e(15)") return MakeExponential(name, 15, seed);
  if (name == "e(20)") return MakeExponential(name, 20, seed);
  if (name == "arap1") return MakeArapahoe(name, Axis::kX, 21, seed);
  if (name == "arap2") return MakeArapahoe(name, Axis::kY, 18, seed);
  if (name == "rr1(12)") return MakeRailRiver(name, Axis::kX, 12, seed);
  if (name == "rr1(22)") return MakeRailRiver(name, Axis::kX, 22, seed);
  if (name == "rr2(12)") return MakeRailRiver(name, Axis::kY, 12, seed);
  if (name == "rr2(22)") return MakeRailRiver(name, Axis::kY, 22, seed);
  if (name == "iw" || name == "ci") return MakeInstanceWeight(name, seed);
  return NotFoundError("unknown paper data file '" + name + "'");
}

}  // namespace selest
