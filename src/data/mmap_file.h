// Read-only memory-mapped files.
//
// The out-of-core data layer (data/column_file.h) serves 10⁷–10⁸-row
// binary column files without reading them into heap memory: the file is
// mapped once and chunk iteration hands out views into the mapping.
//
// Lifetime rule (DESIGN.md §13): every span derived from data() is a view
// into the mapping and dies with the MmapFile. Holders of such spans — in
// particular MmapColumnSource chunks — must not outlive the file object.
#ifndef SELEST_DATA_MMAP_FILE_H_
#define SELEST_DATA_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace selest {

// An immutable mapping of a whole file. Move-only; unmaps on destruction.
class MmapFile {
 public:
  // Maps `path` read-only. kNotFound when the file does not exist,
  // kInternal for open/stat/mmap failures. An empty file maps to a valid
  // object with size() == 0 and data() == nullptr.
  static StatusOr<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MmapFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace selest

#endif  // SELEST_DATA_MMAP_FILE_H_
