// Probability distributions over the real line.
//
// These generate the paper's artificial data files (Uniform, Normal,
// Exponential — §5.1.1) and provide analytic PDFs/CDFs for ground-truth
// checks and for the AMISE formulas of Section 4, which need the density
// derivative functionals R(f') and R(f'').
#ifndef SELEST_DATA_DISTRIBUTION_H_
#define SELEST_DATA_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/util/random.h"

namespace selest {

// A univariate distribution with density. Implementations must be
// thread-compatible (sampling mutates only the passed Rng).
class Distribution {
 public:
  virtual ~Distribution() = default;

  // Draws one value.
  virtual double Sample(Rng& rng) const = 0;

  // Probability density at x.
  virtual double Pdf(double x) const = 0;

  // Cumulative distribution at x.
  virtual double Cdf(double x) const = 0;

  // First derivative of the density. The default implementation uses a
  // central finite difference of Pdf; override when an analytic form exists.
  virtual double PdfDerivative(double x) const;

  // Second derivative of the density (finite difference by default).
  virtual double PdfSecondDerivative(double x) const;

  // Human-readable name, e.g. "normal(0, 1)".
  virtual std::string name() const = 0;
};

// Uniform on [lo, hi].
class UniformDistribution : public Distribution {
 public:
  UniformDistribution(double lo, double hi);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double PdfDerivative(double x) const override;
  double PdfSecondDerivative(double x) const override;
  std::string name() const override;

 private:
  double lo_;
  double hi_;
};

// Normal with the given mean and standard deviation.
class NormalDistribution : public Distribution {
 public:
  NormalDistribution(double mean, double sigma);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double PdfDerivative(double x) const override;
  double PdfSecondDerivative(double x) const override;
  std::string name() const override;

  double mean() const { return mean_; }
  double sigma() const { return sigma_; }

 private:
  double mean_;
  double sigma_;
};

// Exponential with the given rate, shifted to start at `origin`:
// density rate·exp(−rate·(x−origin)) for x >= origin. The paper uses the
// exponential as a stand-in for Zipf-like skew (§5.1.1).
class ExponentialDistribution : public Distribution {
 public:
  ExponentialDistribution(double rate, double origin = 0.0);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double PdfDerivative(double x) const override;
  double PdfSecondDerivative(double x) const override;
  std::string name() const override;

 private:
  double rate_;
  double origin_;
};

// Discrete Zipf over the integers {0, ..., num_values−1} with exponent
// `skew`: P(k) ∝ (k+1)^−skew. Pdf/Cdf treat it as a purely atomic
// distribution; Pdf returns the probability mass at round(x).
class ZipfDistribution : public Distribution {
 public:
  ZipfDistribution(int num_values, double skew);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  std::string name() const override;

 private:
  int num_values_;
  double skew_;
  std::vector<double> cumulative_;  // cumulative_[k] = P(X <= k)
};

// Finite mixture of component distributions with the given weights
// (normalized internally). Used by the synthetic "real" data generators.
class MixtureDistribution : public Distribution {
 public:
  MixtureDistribution(std::vector<std::unique_ptr<Distribution>> components,
                      std::vector<double> weights);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  std::string name() const override;

 private:
  std::vector<std::unique_ptr<Distribution>> components_;
  std::vector<double> weights_;      // normalized
  std::vector<double> cum_weights_;  // prefix sums of weights_
};

}  // namespace selest

#endif  // SELEST_DATA_DISTRIBUTION_H_
