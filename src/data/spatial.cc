#include "src/data/spatial.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/check.h"

namespace selest {
namespace {

double Reflect01(double v) {
  // Reflects v into [0, 1] (handles any finite value).
  v = std::fabs(v);
  const double period = std::fmod(v, 2.0);
  return period <= 1.0 ? period : 2.0 - period;
}

}  // namespace

std::vector<Point2> GenerateStreetNetwork(const StreetNetworkConfig& config,
                                          size_t min_points, Rng& rng) {
  SELEST_CHECK_GT(config.num_clusters, 0);
  SELEST_CHECK_GT(min_points, 0u);
  // Cluster centers and per-cluster intensity (towns differ in size).
  std::vector<Point2> centers(config.num_clusters);
  std::vector<double> intensity(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    centers[c] = {rng.NextDouble(), rng.NextDouble()};
    // Zipf-ish town sizes: a few dominant towns, many hamlets.
    intensity[c] = 1.0 / (1.0 + c);
  }
  double total_intensity = 0.0;
  for (double w : intensity) total_intensity += w;

  std::vector<Point2> points;
  points.reserve(min_points + 2);
  while (points.size() < min_points) {
    Point2 midpoint;
    if (rng.NextDouble() < config.rural_fraction) {
      midpoint = {rng.NextDouble(), rng.NextDouble()};
    } else {
      // Pick a cluster proportionally to intensity.
      double u = rng.NextDouble() * total_intensity;
      int cluster = 0;
      while (cluster + 1 < config.num_clusters && u > intensity[cluster]) {
        u -= intensity[cluster];
        ++cluster;
      }
      midpoint = {
          Reflect01(centers[cluster].x +
                    config.cluster_spread * rng.NextGaussian()),
          Reflect01(centers[cluster].y +
                    config.cluster_spread * rng.NextGaussian())};
    }
    // Street grids favour axis-aligned segments; mix in diagonals.
    double angle;
    const double direction_pick = rng.NextDouble();
    if (direction_pick < 0.4) {
      angle = 0.0;
    } else if (direction_pick < 0.8) {
      angle = std::numbers::pi / 2.0;
    } else {
      angle = rng.NextDouble() * std::numbers::pi;
    }
    const double half =
        0.5 * config.segment_length * (0.5 + rng.NextDouble());
    const double dx = half * std::cos(angle);
    const double dy = half * std::sin(angle);
    points.push_back({Reflect01(midpoint.x - dx), Reflect01(midpoint.y - dy)});
    points.push_back({Reflect01(midpoint.x + dx), Reflect01(midpoint.y + dy)});
  }
  return points;
}

std::vector<Point2> GeneratePolylines(const PolylineConfig& config,
                                      size_t min_points, Rng& rng) {
  SELEST_CHECK_GT(config.num_polylines, 0);
  SELEST_CHECK_GT(min_points, 0u);
  SELEST_CHECK_GE(config.persistence, 0.0);
  SELEST_CHECK_LT(config.persistence, 1.0);
  const size_t steps_per_line =
      (min_points + config.num_polylines - 1) /
      static_cast<size_t>(config.num_polylines);
  std::vector<Point2> points;
  points.reserve(min_points + steps_per_line);
  for (int line = 0; line < config.num_polylines; ++line) {
    Point2 position{rng.NextDouble(), rng.NextDouble()};
    double heading = rng.NextDouble() * 2.0 * std::numbers::pi;
    for (size_t step = 0; step < steps_per_line; ++step) {
      points.push_back(position);
      // Persistent direction with Gaussian turning noise.
      heading += (1.0 - config.persistence) * 2.0 * rng.NextGaussian();
      position.x =
          Reflect01(position.x + config.step_length * std::cos(heading));
      position.y =
          Reflect01(position.y + config.step_length * std::sin(heading));
    }
  }
  return points;
}

Dataset MarginalDataset(std::string name, const std::vector<Point2>& points,
                        Axis axis, int bits, size_t count) {
  SELEST_CHECK_GE(points.size(), count);
  const Domain domain = BitDomain(bits);
  std::vector<double> values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double coordinate = axis == Axis::kX ? points[i].x : points[i].y;
    // Scale [0, 1] onto the integer domain and quantize.
    const double scaled = coordinate * domain.hi;
    values.push_back(domain.Clamp(domain.Quantize(scaled)));
  }
  return Dataset(std::move(name), domain, std::move(values));
}

}  // namespace selest
