#include "src/data/dataset.h"

#include <algorithm>

#include "src/util/check.h"

namespace selest {

Dataset::Dataset(std::string name, Domain domain, std::vector<double> values)
    : name_(std::move(name)),
      domain_(domain),
      values_(std::move(values)),
      sorted_cache_(std::make_shared<SortedCache>()) {
  SELEST_CHECK(!values_.empty());
  for (double v : values_) SELEST_CHECK(domain_.Contains(v));
}

Dataset Dataset::FromSortedValues(std::string name, Domain domain,
                                  std::vector<double> values) {
  SELEST_CHECK(std::is_sorted(values.begin(), values.end()));
  Dataset data(std::move(name), domain, std::move(values));
  data.values_sorted_ = true;
  return data;
}

Dataset::Dataset(Dataset&& other) noexcept
    : name_(std::move(other.name_)),
      domain_(other.domain_),
      values_(std::move(other.values_)),
      values_sorted_(other.values_sorted_),
      sorted_cache_(std::move(other.sorted_cache_)) {
  other.values_.clear();
  other.values_sorted_ = false;
  other.sorted_cache_ = std::make_shared<SortedCache>();
}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    domain_ = other.domain_;
    values_ = std::move(other.values_);
    values_sorted_ = other.values_sorted_;
    sorted_cache_ = std::move(other.sorted_cache_);
    other.values_.clear();
    other.values_sorted_ = false;
    other.sorted_cache_ = std::make_shared<SortedCache>();
  }
  return *this;
}

const std::vector<double>& Dataset::sorted_values() const {
  if (values_sorted_) return values_;
  SortedCache& cache = *sorted_cache_;
  std::call_once(cache.once, [this, &cache] {
    cache.values = values_;
    std::sort(cache.values.begin(), cache.values.end());
  });
  return cache.values;
}

size_t Dataset::CountDistinct() const {
  const std::vector<double>& sorted = sorted_values();
  size_t distinct = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) ++distinct;
  }
  return distinct;
}

size_t Dataset::CountInRange(double a, double b) const {
  if (a > b) return 0;
  const std::vector<double>& sorted = sorted_values();
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), a);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), b);
  return static_cast<size_t>(hi - lo);
}

Dataset GenerateDataset(std::string name, const Distribution& distribution,
                        size_t count, const Domain& domain, Rng& rng) {
  SELEST_CHECK_GT(count, 0u);
  std::vector<double> values;
  values.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = 100 * count + 1000;
  while (values.size() < count) {
    SELEST_CHECK_LT(attempts, max_attempts);
    ++attempts;
    const double raw = distribution.Sample(rng);
    const double quantized = domain.Quantize(raw);
    if (!domain.Contains(quantized)) continue;  // discarded per §5.1.1
    values.push_back(quantized);
  }
  return Dataset(std::move(name), domain, std::move(values));
}

}  // namespace selest
