// Synthetic census-like data standing in for the paper's instance-weight
// file (`iw` / `ci`, Table 2).
//
// The census-income instance weight is a survey weight: a few hundred
// distinct values carry almost all of the mass (records sharing a stratum
// share a weight), with Zipf-like frequencies, plus a thin spread of
// rarely-used weights. On such a column every reasonable estimator lands in
// the same few-percent error band while the uniform (one-bin) estimator is
// catastrophically wrong (~600% in Fig. 8) — the generator below reproduces
// that structure on the p-bit integer domain.
#ifndef SELEST_DATA_CENSUS_H_
#define SELEST_DATA_CENSUS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {

struct InstanceWeightConfig {
  // Domain bits (Table 2: p = 21).
  int bits = 21;
  // Number of heavy distinct weight values.
  int num_spikes = 400;
  // Zipf exponent of the spike frequencies.
  double spike_skew = 1.1;
  // Fraction of records drawn from the continuous background instead of a
  // spike.
  double background_fraction = 0.05;
  // Log-normal shape of the spike positions (weights cluster at low values
  // with a long right tail, like survey weights).
  double log_mean = 0.25;   // of domain width, before the tail stretch
  double log_sigma = 0.75;
};

// The per-record draw behind GenerateInstanceWeights, split out so the
// streaming SyntheticColumnSource (data/column_source.h) can emit the
// identical record stream without materializing it. Construction consumes
// the setup draws (spike positions) from `rng`; Next draws one record.
// For a given post-setup RNG state the record sequence is deterministic,
// which is the streaming-vs-materialized bit-identity contract.
class InstanceWeightSampler {
 public:
  InstanceWeightSampler(const InstanceWeightConfig& config, Rng& rng);

  const Domain& domain() const { return domain_; }
  double Next(Rng& rng) const;

 private:
  Domain domain_;
  double background_fraction_;
  std::vector<double> spike_positions_;
  std::vector<double> cumulative_;  // cumulative spike frequencies, sums to 1
};

// Generates `count` instance-weight records.
Dataset GenerateInstanceWeights(std::string name,
                                const InstanceWeightConfig& config,
                                size_t count, Rng& rng);

}  // namespace selest

#endif  // SELEST_DATA_CENSUS_H_
