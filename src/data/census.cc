#include "src/data/census.h"

#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace selest {

Dataset GenerateInstanceWeights(std::string name,
                                const InstanceWeightConfig& config,
                                size_t count, Rng& rng) {
  SELEST_CHECK_GT(count, 0u);
  SELEST_CHECK_GT(config.num_spikes, 0);
  const Domain domain = BitDomain(config.bits);

  // Spike positions: log-normal over the domain, clustered low with a long
  // right tail like survey weights.
  std::vector<double> spike_positions(config.num_spikes);
  for (double& position : spike_positions) {
    const double log_normal =
        std::exp(std::log(config.log_mean) +
                 config.log_sigma * rng.NextGaussian());
    position = domain.Clamp(domain.Quantize(log_normal * domain.hi));
  }

  // Zipf frequencies over the spikes (spike 0 heaviest).
  std::vector<double> cumulative(config.num_spikes);
  double total = 0.0;
  for (int k = 0; k < config.num_spikes; ++k) {
    total += std::pow(k + 1.0, -config.spike_skew);
    cumulative[k] = total;
  }
  for (double& c : cumulative) c /= total;

  std::vector<double> values;
  values.reserve(count);
  while (values.size() < count) {
    if (rng.NextDouble() < config.background_fraction) {
      // Thin continuous background: uniform over the lower half of the
      // domain where weights live.
      values.push_back(
          domain.Quantize(rng.NextDouble() * 0.5 * domain.hi));
    } else {
      const double u = rng.NextDouble();
      int index = 0;
      // Binary search over the cumulative frequencies.
      int lo = 0;
      int hi = config.num_spikes - 1;
      while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (cumulative[mid] < u) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      index = lo;
      values.push_back(spike_positions[index]);
    }
  }
  return Dataset(std::move(name), domain, std::move(values));
}

}  // namespace selest
