#include "src/data/census.h"

#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace selest {

InstanceWeightSampler::InstanceWeightSampler(
    const InstanceWeightConfig& config, Rng& rng)
    : domain_(BitDomain(config.bits)),
      background_fraction_(config.background_fraction) {
  SELEST_CHECK_GT(config.num_spikes, 0);

  // Spike positions: log-normal over the domain, clustered low with a long
  // right tail like survey weights.
  spike_positions_.resize(static_cast<size_t>(config.num_spikes));
  for (double& position : spike_positions_) {
    const double log_normal =
        std::exp(std::log(config.log_mean) +
                 config.log_sigma * rng.NextGaussian());
    position = domain_.Clamp(domain_.Quantize(log_normal * domain_.hi));
  }

  // Zipf frequencies over the spikes (spike 0 heaviest).
  cumulative_.resize(static_cast<size_t>(config.num_spikes));
  double total = 0.0;
  for (int k = 0; k < config.num_spikes; ++k) {
    total += std::pow(k + 1.0, -config.spike_skew);
    cumulative_[static_cast<size_t>(k)] = total;
  }
  for (double& c : cumulative_) c /= total;
}

double InstanceWeightSampler::Next(Rng& rng) const {
  if (rng.NextDouble() < background_fraction_) {
    // Thin continuous background: uniform over the lower half of the
    // domain where weights live.
    return domain_.Quantize(rng.NextDouble() * 0.5 * domain_.hi);
  }
  const double u = rng.NextDouble();
  // Binary search over the cumulative frequencies.
  size_t lo = 0;
  size_t hi = cumulative_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cumulative_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return spike_positions_[lo];
}

Dataset GenerateInstanceWeights(std::string name,
                                const InstanceWeightConfig& config,
                                size_t count, Rng& rng) {
  SELEST_CHECK_GT(count, 0u);
  const InstanceWeightSampler sampler(config, rng);

  std::vector<double> values;
  values.reserve(count);
  while (values.size() < count) {
    values.push_back(sampler.Next(rng));
  }
  return Dataset(std::move(name), sampler.domain(), std::move(values));
}

}  // namespace selest
