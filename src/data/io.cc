#include "src/data/io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/exec/fault_injection.h"
#include "src/util/serialize.h"

namespace selest {
namespace {

constexpr uint32_t kBinaryVersion = 1;
constexpr char kTextMagic[] = "selest-dataset";

StatusOr<Dataset> MakeChecked(std::string name, Domain domain,
                              std::vector<double> values) {
  if (values.empty()) {
    return InvalidArgumentError("dataset file holds no values");
  }
  if (!(domain.lo < domain.hi)) {
    return InvalidArgumentError("dataset file has an empty domain");
  }
  for (double v : values) {
    if (!std::isfinite(v) || !domain.Contains(v)) {
      return InvalidArgumentError("dataset file value outside its domain");
    }
  }
  return Dataset(std::move(name), domain, std::move(values));
}

}  // namespace

Status SaveDatasetText(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open '" + path + "' for writing");
  out << kTextMagic << ' ' << data.name() << ' ' << data.domain().lo << ' '
      << data.domain().hi << ' ' << (data.domain().discrete ? 1 : 0) << ' '
      << data.domain().bits << '\n';
  out.precision(17);
  for (double v : data.values()) out << v << '\n';
  out.flush();
  if (!out) return InternalError("write to '" + path + "' failed");
  return Status::Ok();
}

StatusOr<Dataset> LoadDatasetText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointDatasetReadText));
  std::string magic;
  std::string name;
  Domain domain;
  int discrete = 0;
  if (!(in >> magic >> name >> domain.lo >> domain.hi >> discrete >>
        domain.bits) ||
      magic != kTextMagic) {
    return InvalidArgumentError("'" + path + "' is not a selest dataset file");
  }
  domain.discrete = discrete != 0;
  std::vector<double> values;
  double v;
  while (in >> v) values.push_back(v);
  return MakeChecked(std::move(name), domain, std::move(values));
}

Status SaveDatasetBinary(const Dataset& data, const std::string& path) {
  ByteWriter writer;
  writer.WriteU32(kBinaryVersion);
  writer.WriteString(data.name());
  writer.WriteDouble(data.domain().lo);
  writer.WriteDouble(data.domain().hi);
  writer.WriteU32(data.domain().discrete ? 1 : 0);
  writer.WriteU32(static_cast<uint32_t>(data.domain().bits));
  writer.WriteDoubleVector(data.values());
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open '" + path + "' for writing");
  const auto& bytes = writer.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return InternalError("write to '" + path + "' failed");
  return Status::Ok();
}

StatusOr<Dataset> LoadDatasetBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointDatasetReadBinary));
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ByteReader reader(std::move(bytes));
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kBinaryVersion) {
    return InvalidArgumentError("unsupported dataset format version");
  }
  auto name = reader.ReadString();
  if (!name.ok()) return name.status();
  auto lo = reader.ReadDouble();
  if (!lo.ok()) return lo.status();
  auto hi = reader.ReadDouble();
  if (!hi.ok()) return hi.status();
  auto discrete = reader.ReadU32();
  if (!discrete.ok()) return discrete.status();
  auto bits = reader.ReadU32();
  if (!bits.ok()) return bits.status();
  auto values = reader.ReadDoubleVector();
  if (!values.ok()) return values.status();
  if (!reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes in dataset file");
  }
  Domain domain;
  domain.lo = lo.value();
  domain.hi = hi.value();
  domain.discrete = discrete.value() != 0;
  domain.bits = static_cast<int>(bits.value());
  return MakeChecked(std::move(name).value(), domain,
                     std::move(values).value());
}

}  // namespace selest
