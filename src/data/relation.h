// A minimal relation abstraction: named columns over a common record count.
//
// Selectivity estimation serves a query optimizer; this layer gives the
// examples and integration tests a database-shaped surface (relation,
// attribute, range predicate) on top of Dataset.
#ifndef SELEST_DATA_RELATION_H_
#define SELEST_DATA_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace selest {

// A relation R with metric attributes A_1..A_k, each stored as a column of
// values (one per record). All columns must have the same record count.
class Relation {
 public:
  // Builds a relation from columns; fails if column sizes differ or a name
  // repeats.
  static StatusOr<Relation> Create(std::string name,
                                   std::vector<std::shared_ptr<Dataset>> columns);

  const std::string& name() const { return name_; }
  size_t num_records() const { return num_records_; }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<std::shared_ptr<Dataset>>& columns() const {
    return columns_;
  }

  // The column named `attribute`, or NOT_FOUND.
  StatusOr<std::shared_ptr<Dataset>> Column(const std::string& attribute) const;

  // Exact result size of the range predicate a <= attribute <= b
  // (the instance selectivity numerator).
  StatusOr<size_t> CountRange(const std::string& attribute, double a,
                              double b) const;

 private:
  Relation(std::string name, std::vector<std::shared_ptr<Dataset>> columns,
           size_t num_records)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        num_records_(num_records) {}

  std::string name_;
  std::vector<std::shared_ptr<Dataset>> columns_;
  size_t num_records_;
};

}  // namespace selest

#endif  // SELEST_DATA_RELATION_H_
