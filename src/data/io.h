// Dataset persistence.
//
// The paper's data files were published for download (§5.1); this module
// lets the generated stand-ins be exported and re-imported, in a simple
// one-value-per-line text format and in the binary format of
// util/serialize.h.
#ifndef SELEST_DATA_IO_H_
#define SELEST_DATA_IO_H_

#include <string>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace selest {

// Text format: header line "selest-dataset <name> <lo> <hi> <discrete>
// <bits>", then one value per line.
Status SaveDatasetText(const Dataset& data, const std::string& path);
StatusOr<Dataset> LoadDatasetText(const std::string& path);

// Binary format via ByteWriter (versioned, bounds-checked on read).
Status SaveDatasetBinary(const Dataset& data, const std::string& path);
StatusOr<Dataset> LoadDatasetBinary(const std::string& path);

}  // namespace selest

#endif  // SELEST_DATA_IO_H_
