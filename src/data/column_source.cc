#include "src/data/column_source.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace selest {

std::vector<double> MaterializeSource(ColumnSource& source) {
  source.Reset();
  std::vector<double> values;
  values.reserve(static_cast<size_t>(source.rows()));
  for (std::span<const double> chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    values.insert(values.end(), chunk.begin(), chunk.end());
  }
  return values;
}

// --- InMemoryColumnSource ---------------------------------------------------

InMemoryColumnSource::InMemoryColumnSource(const Dataset& dataset,
                                           size_t chunk_rows)
    : InMemoryColumnSource(dataset.name(), dataset.domain(), dataset.values(),
                           chunk_rows) {}

InMemoryColumnSource::InMemoryColumnSource(std::string name,
                                           const Domain& domain,
                                           std::span<const double> values,
                                           size_t chunk_rows)
    : name_(std::move(name)),
      domain_(domain),
      values_(values),
      chunk_rows_(chunk_rows) {
  SELEST_CHECK_GT(chunk_rows, 0u);
}

std::span<const double> InMemoryColumnSource::NextChunk() {
  if (next_ >= values_.size()) return {};
  const size_t take = std::min(chunk_rows_, values_.size() - next_);
  const std::span<const double> chunk = values_.subspan(next_, take);
  next_ += take;
  return chunk;
}

// --- SyntheticColumnSource --------------------------------------------------

SyntheticColumnSource::SyntheticColumnSource(
    std::string name, const Domain& domain, uint64_t rows,
    std::unique_ptr<const RowGenerator> generator, Rng rng, size_t chunk_rows)
    : name_(std::move(name)),
      domain_(domain),
      rows_(rows),
      chunk_rows_(chunk_rows),
      generator_(std::move(generator)),
      stream_start_(rng),
      rng_(rng) {
  SELEST_CHECK_GT(rows, 0u);
  SELEST_CHECK_GT(chunk_rows, 0u);
  SELEST_CHECK(generator_ != nullptr);
  buffer_.reserve(chunk_rows);
}

void SyntheticColumnSource::Reset() {
  rng_ = stream_start_;
  emitted_ = 0;
}

std::span<const double> SyntheticColumnSource::NextChunk() {
  if (emitted_ >= rows_) return {};
  const uint64_t remaining = rows_ - emitted_;
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(chunk_rows_, remaining));
  buffer_.clear();
  for (size_t i = 0; i < take; ++i) {
    buffer_.push_back(generator_->Next(rng_));
  }
  emitted_ += take;
  return buffer_;
}

namespace {

// Replays GenerateDataset's record loop: sample, quantize to the domain's
// resolution, discard records falling outside the domain (§5.1.1).
class DistributionRowGenerator : public SyntheticColumnSource::RowGenerator {
 public:
  DistributionRowGenerator(std::shared_ptr<const Distribution> distribution,
                           const Domain& domain)
      : distribution_(std::move(distribution)), domain_(domain) {}

  double Next(Rng& rng) const override {
    // GenerateDataset bounds total attempts at 100·count; the streaming
    // equivalent bounds them per record so the guard needs no stream
    // length. Both abort only when the distribution misses the domain.
    constexpr size_t kMaxAttemptsPerRecord = 100000;
    for (size_t attempt = 0; attempt < kMaxAttemptsPerRecord; ++attempt) {
      const double raw = distribution_->Sample(rng);
      const double quantized = domain_.Quantize(raw);
      if (domain_.Contains(quantized)) return quantized;
    }
    SELEST_CHECK(false &&
                 "synthetic distribution rejects (almost) every record");
    return domain_.lo;
  }

 private:
  std::shared_ptr<const Distribution> distribution_;
  Domain domain_;
};

class InstanceWeightRowGenerator
    : public SyntheticColumnSource::RowGenerator {
 public:
  // Consumes the sampler's setup draws from `rng`, mirroring
  // GenerateInstanceWeights.
  InstanceWeightRowGenerator(const InstanceWeightConfig& config, Rng& rng)
      : sampler_(config, rng) {}

  const Domain& domain() const { return sampler_.domain(); }
  double Next(Rng& rng) const override { return sampler_.Next(rng); }

 private:
  InstanceWeightSampler sampler_;
};

}  // namespace

std::unique_ptr<SyntheticColumnSource> MakeDistributionSource(
    std::string name, std::shared_ptr<const Distribution> distribution,
    uint64_t rows, const Domain& domain, uint64_t seed, size_t chunk_rows) {
  SELEST_CHECK(distribution != nullptr);
  auto generator = std::make_unique<DistributionRowGenerator>(
      std::move(distribution), domain);
  return std::make_unique<SyntheticColumnSource>(
      std::move(name), domain, rows, std::move(generator), Rng(seed),
      chunk_rows);
}

std::unique_ptr<SyntheticColumnSource> MakeInstanceWeightSource(
    std::string name, const InstanceWeightConfig& config, uint64_t rows,
    uint64_t seed, size_t chunk_rows) {
  Rng rng(seed);
  auto generator = std::make_unique<InstanceWeightRowGenerator>(config, rng);
  const Domain domain = generator->domain();
  // `rng` is now past the setup draws: its state here is the stream start,
  // exactly where GenerateInstanceWeights begins drawing records.
  return std::make_unique<SyntheticColumnSource>(
      std::move(name), domain, rows, std::move(generator), rng, chunk_rows);
}

StatusOr<std::unique_ptr<SyntheticColumnSource>> MakeNamedSource(
    const std::string& distribution, uint64_t rows, int bits, uint64_t seed,
    double param, size_t chunk_rows) {
  if (rows == 0) {
    return InvalidArgumentError("synthetic source needs rows > 0");
  }
  if (bits < 1 || bits > 62) {
    return InvalidArgumentError("domain bits must be in [1, 62], got " +
                                std::to_string(bits));
  }
  const Domain domain = BitDomain(bits);
  const std::string name =
      distribution + "-" + std::to_string(bits) + "b-" + std::to_string(rows);
  if (distribution == "uniform") {
    return MakeDistributionSource(
        name, std::make_shared<UniformDistribution>(domain.lo, domain.hi),
        rows, domain, seed, chunk_rows);
  }
  if (distribution == "normal") {
    // Centered, ~±3σ spanning the domain, as the paper's normal files do.
    const double mean = 0.5 * (domain.lo + domain.hi);
    const double sigma = domain.width() / 6.0;
    return MakeDistributionSource(
        name, std::make_shared<NormalDistribution>(mean, sigma), rows, domain,
        seed, chunk_rows);
  }
  if (distribution == "exponential") {
    // Rate such that the domain covers ~8 mean lifetimes (long right tail
    // inside the domain, the paper's Zipf-like skew stand-in).
    const double rate = param > 0.0 ? param : 8.0 / domain.width();
    return MakeDistributionSource(
        name, std::make_shared<ExponentialDistribution>(rate, domain.lo),
        rows, domain, seed, chunk_rows);
  }
  if (distribution == "zipf") {
    const double skew = param > 0.0 ? param : 1.1;
    const uint64_t cardinality = domain.cardinality();
    // ZipfDistribution precomputes a cumulative table; cap the support so
    // a wide domain does not cost gigabytes of setup.
    constexpr uint64_t kMaxZipfSupport = 1u << 22;
    const int support = static_cast<int>(
        std::min<uint64_t>(cardinality, kMaxZipfSupport));
    return MakeDistributionSource(
        name, std::make_shared<ZipfDistribution>(support, skew), rows, domain,
        seed, chunk_rows);
  }
  if (distribution == "census") {
    InstanceWeightConfig config;
    config.bits = bits;
    if (param > 0.0) config.spike_skew = param;
    return MakeInstanceWeightSource(name, config, rows, seed, chunk_rows);
  }
  return InvalidArgumentError(
      "unknown distribution '" + distribution +
      "' (expected uniform|normal|exponential|zipf|census)");
}

}  // namespace selest
