// Synthetic spatial data standing in for the paper's TIGER/Line files.
//
// The paper's real data are the endpoints of line features (streets of
// county Arapahoe; rail roads and rivers around L.A.) projected onto one
// coordinate. Those files are not obtainable here, so this module generates
// geometry with the same statistical character:
//
//  * StreetNetwork: urban clusters of short street segments plus sparse
//    rural segments. Marginals are multimodal and rough — locally dense
//    plateaus with sharp urban/rural change points, which is exactly the
//    regime where pure kernel estimators lose to the hybrid (§5.2.6).
//  * Polylines: long random-walk polylines (rail roads, rivers). Vertices
//    concentrate in bands, producing strongly non-uniform, ridged marginals.
//
// Each generator returns 2-D points; MarginalDataset projects one dimension
// onto a p-bit integer domain, matching Table 2 (arap1/arap2, rr1/rr2).
#ifndef SELEST_DATA_SPATIAL_H_
#define SELEST_DATA_SPATIAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

// Configuration of the street-network generator. Coordinates live in the
// unit square.
struct StreetNetworkConfig {
  // Number of urban clusters (towns).
  int num_clusters = 12;
  // Street segments per cluster; each segment contributes two endpoints.
  int segments_per_cluster = 60;
  // Spread of a cluster (standard deviation of segment midpoints).
  double cluster_spread = 0.035;
  // Typical street segment length.
  double segment_length = 0.01;
  // Fraction of segments that are rural (uniform over the square).
  double rural_fraction = 0.15;
};

// Generates endpoints of street segments until at least `min_points` points
// exist (two per segment).
std::vector<Point2> GenerateStreetNetwork(const StreetNetworkConfig& config,
                                          size_t min_points, Rng& rng);

// Configuration of the polyline (rail road & river) generator.
struct PolylineConfig {
  // Number of polylines (rivers/tracks).
  int num_polylines = 40;
  // Random-walk step length.
  double step_length = 0.004;
  // Directional persistence in [0, 1): 0 is Brownian, near 1 is straight.
  double persistence = 0.92;
};

// Generates polyline vertices until at least `min_points` points exist.
// Walks reflect at the unit-square boundary.
std::vector<Point2> GeneratePolylines(const PolylineConfig& config,
                                      size_t min_points, Rng& rng);

// Which coordinate of the 2-D points to project.
enum class Axis { kX, kY };

// Projects one coordinate of `points` onto the integer domain [0, 2^p − 1]
// and returns it as a data file with exactly `count` records (truncating
// extras). Mirrors the paper's "1st dim. / 2nd dim." columns of Table 2.
Dataset MarginalDataset(std::string name, const std::vector<Point2>& points,
                        Axis axis, int bits, size_t count);

}  // namespace selest

#endif  // SELEST_DATA_SPATIAL_H_
