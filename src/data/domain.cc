#include "src/data/domain.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace selest {

uint64_t Domain::cardinality() const {
  if (!discrete) return 0;
  return static_cast<uint64_t>(std::floor(hi) - std::ceil(lo)) + 1;
}

double Domain::Clamp(double x) const { return std::clamp(x, lo, hi); }

bool Domain::Contains(double x) const { return x >= lo && x <= hi; }

double Domain::Quantize(double x) const {
  return discrete ? std::round(x) : x;
}

std::string Domain::ToString() const {
  std::string result = discrete ? "discrete[" : "continuous[";
  result += std::to_string(lo) + ", " + std::to_string(hi) + "]";
  if (bits > 0) result += " (p=" + std::to_string(bits) + ")";
  return result;
}

Domain BitDomain(int bits) {
  SELEST_CHECK_GE(bits, 1);
  SELEST_CHECK_LE(bits, 62);
  Domain d;
  d.lo = 0.0;
  d.hi = static_cast<double>((uint64_t{1} << bits) - 1);
  d.discrete = true;
  d.bits = bits;
  return d;
}

Domain ContinuousDomain(double lo, double hi) {
  SELEST_CHECK_LT(lo, hi);
  Domain d;
  d.lo = lo;
  d.hi = hi;
  d.discrete = false;
  d.bits = 0;
  return d;
}

}  // namespace selest
