// Streaming column access: the out-of-core replacement for the eager
// in-memory Dataset.
//
// Every layer of the repro originally materialized a full
// std::vector<double> Dataset before doing anything with it, which caps
// experiments at RAM-comfortable sizes. A ColumnSource instead hands the
// column out as a sequence of chunks; consumers — reservoir samplers,
// one-pass histogram folds, streaming ground truth, the live-server ingest
// path — process each chunk and move on, so a 10⁸-row column never needs
// more resident memory than one chunk.
//
// Contract (DESIGN.md §13):
//   * rows() is the exact number of values the stream yields between a
//     Reset() and the terminating empty chunk.
//   * NextChunk() returns at most chunk_rows() values; an empty span marks
//     the end of the stream. The returned span is valid until the next
//     NextChunk()/Reset() call on the same source, or — for backends whose
//     chunks view stable storage (in-memory, mmap) — until the source (and
//     the storage it views) is destroyed.
//   * Reset() rewinds to the beginning; deterministic backends (all three
//     below) then replay the bit-identical stream. This is what makes
//     multi-pass streaming builds and the bit-identity contract of
//     est/streaming_build.h well defined.
//   * Chunk boundaries carry no meaning: consumers must compute the same
//     result for any chunk_rows, including a misaligned final chunk (the
//     `stream` ctest label enforces this for every streaming build).
#ifndef SELEST_DATA_COLUMN_SOURCE_H_
#define SELEST_DATA_COLUMN_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/data/census.h"
#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace selest {

// Default rows per chunk: 4096 doubles = 32 KiB, comfortably inside L1/L2
// so per-chunk sorts (streaming ground truth) stay cache-resident.
inline constexpr size_t kDefaultChunkRows = 4096;

class ColumnSource {
 public:
  virtual ~ColumnSource() = default;

  virtual const std::string& name() const = 0;
  virtual const Domain& domain() const = 0;
  // Total rows one full pass yields. Known up front for every backend.
  virtual uint64_t rows() const = 0;
  // Rows per chunk this source was configured with (the last chunk of a
  // pass may be shorter).
  virtual size_t chunk_rows() const = 0;

  // Rewinds to the first chunk; the stream replays bit-identically.
  virtual void Reset() = 0;

  // The next chunk, or an empty span at end of stream.
  virtual std::span<const double> NextChunk() = 0;
};

// Materializes one full pass (Reset + all chunks). Test and small-data
// helper — the whole point of ColumnSource is not calling this on big
// columns.
std::vector<double> MaterializeSource(ColumnSource& source);

// --- In-memory adapter -----------------------------------------------------

// Wraps values already resident in memory (a Dataset or any stable span).
// Non-owning: the viewed storage must outlive the source.
class InMemoryColumnSource : public ColumnSource {
 public:
  // Views `dataset.values()`; name and domain are copied.
  explicit InMemoryColumnSource(const Dataset& dataset,
                                size_t chunk_rows = kDefaultChunkRows);
  InMemoryColumnSource(std::string name, const Domain& domain,
                       std::span<const double> values,
                       size_t chunk_rows = kDefaultChunkRows);

  const std::string& name() const override { return name_; }
  const Domain& domain() const override { return domain_; }
  uint64_t rows() const override { return values_.size(); }
  size_t chunk_rows() const override { return chunk_rows_; }
  void Reset() override { next_ = 0; }
  std::span<const double> NextChunk() override;

 private:
  std::string name_;
  Domain domain_;
  std::span<const double> values_;
  size_t chunk_rows_;
  size_t next_ = 0;
};

// --- Seeded synthetic generator --------------------------------------------

// Streams a synthetic column without materializing it: a seeded row
// generator is replayed on every pass (Reset restores the post-setup RNG
// state), so the stream is deterministic and multi-pass builds see the
// identical rows. Chunks view an internal buffer of chunk_rows values.
class SyntheticColumnSource : public ColumnSource {
 public:
  // Draws one in-domain record per call, advancing `rng`.
  class RowGenerator {
   public:
    virtual ~RowGenerator() = default;
    virtual double Next(Rng& rng) const = 0;
  };

  // `rng` must already be past any setup draws the generator's
  // construction consumed; its state at this point is the replayed
  // stream start.
  SyntheticColumnSource(std::string name, const Domain& domain, uint64_t rows,
                        std::unique_ptr<const RowGenerator> generator, Rng rng,
                        size_t chunk_rows = kDefaultChunkRows);

  const std::string& name() const override { return name_; }
  const Domain& domain() const override { return domain_; }
  uint64_t rows() const override { return rows_; }
  size_t chunk_rows() const override { return chunk_rows_; }
  void Reset() override;
  std::span<const double> NextChunk() override;

 private:
  std::string name_;
  Domain domain_;
  uint64_t rows_;
  size_t chunk_rows_;
  std::unique_ptr<const RowGenerator> generator_;
  Rng stream_start_;  // RNG state replayed by Reset
  Rng rng_;
  uint64_t emitted_ = 0;
  std::vector<double> buffer_;
};

// Streams GenerateDataset's records (data/dataset.h): the same
// sample → quantize → reject-outside-domain loop, so for equal
// (distribution, domain, seed) the stream is bit-identical to the
// materialized Dataset. Aborts if a single record needs more than 10⁵
// rejection draws (the distribution misses the domain, §5.1.1).
std::unique_ptr<SyntheticColumnSource> MakeDistributionSource(
    std::string name, std::shared_ptr<const Distribution> distribution,
    uint64_t rows, const Domain& domain, uint64_t seed,
    size_t chunk_rows = kDefaultChunkRows);

// Streams GenerateInstanceWeights' census-like records (data/census.h),
// bit-identical to the materialized Dataset for equal (config, seed).
std::unique_ptr<SyntheticColumnSource> MakeInstanceWeightSource(
    std::string name, const InstanceWeightConfig& config, uint64_t rows,
    uint64_t seed, size_t chunk_rows = kDefaultChunkRows);

// The named data shapes the crossover harness and tools/datagen sweep:
// "uniform", "normal", "exponential" (the paper's artificial files,
// §5.1.1), "zipf" (skew via `param`, default 1.1), and "census" (the
// Table 2 instance-weight stand-in). The domain is the p-bit integer
// domain BitDomain(bits). kInvalidArgument for an unknown name or
// non-positive rows.
StatusOr<std::unique_ptr<SyntheticColumnSource>> MakeNamedSource(
    const std::string& distribution, uint64_t rows, int bits, uint64_t seed,
    double param = 0.0, size_t chunk_rows = kDefaultChunkRows);

}  // namespace selest

#endif  // SELEST_DATA_COLUMN_SOURCE_H_
