#include "src/data/column_file.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "src/util/check.h"

namespace selest {
namespace {

constexpr char kMagic[8] = {'S', 'E', 'L', 'E', 'S', 'T', 'c', 'f'};
constexpr size_t kNameOffset = 48;
constexpr size_t kMaxNameLength = 255;
constexpr uint32_t kFlagDiscrete = 1u << 0;

// Offsets per the header comment in column_file.h.
struct HeaderFields {
  uint32_t version;
  uint32_t flags;
  double lo;
  double hi;
  int32_t bits;
  uint32_t name_length;
  uint64_t row_count;
};

void PackHeader(const HeaderFields& fields, const std::string& name,
                uint8_t* out) {
  std::memset(out, 0, kColumnFileHeaderBytes);
  std::memcpy(out, kMagic, sizeof(kMagic));
  std::memcpy(out + 8, &fields.version, 4);
  std::memcpy(out + 12, &fields.flags, 4);
  std::memcpy(out + 16, &fields.lo, 8);
  std::memcpy(out + 24, &fields.hi, 8);
  std::memcpy(out + 32, &fields.bits, 4);
  std::memcpy(out + 36, &fields.name_length, 4);
  std::memcpy(out + 40, &fields.row_count, 8);
  std::memcpy(out + kNameOffset, name.data(), name.size());
}

Status ValidateDomainForFile(const Domain& domain) {
  if (!std::isfinite(domain.lo) || !std::isfinite(domain.hi) ||
      !(domain.lo < domain.hi)) {
    return InvalidArgumentError(
        "column file domain must be a finite non-empty range, got " +
        domain.ToString());
  }
  return Status::Ok();
}

StatusOr<ColumnFileHeader> ParseHeader(const uint8_t* bytes, size_t available,
                                       const std::string& path) {
  if (available < kColumnFileHeaderBytes) {
    return OutOfRangeError("column file " + path + " truncated: " +
                           std::to_string(available) + " bytes, header needs " +
                           std::to_string(kColumnFileHeaderBytes));
  }
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError("column file " + path + " has a wrong magic");
  }
  HeaderFields fields;
  std::memcpy(&fields.version, bytes + 8, 4);
  std::memcpy(&fields.flags, bytes + 12, 4);
  std::memcpy(&fields.lo, bytes + 16, 8);
  std::memcpy(&fields.hi, bytes + 24, 8);
  std::memcpy(&fields.bits, bytes + 32, 4);
  std::memcpy(&fields.name_length, bytes + 36, 4);
  std::memcpy(&fields.row_count, bytes + 40, 8);
  if (fields.version > kColumnFileVersion) {
    return FailedPreconditionError(
        "column file " + path + " has version " +
        std::to_string(fields.version) + ", this build reads up to " +
        std::to_string(kColumnFileVersion));
  }
  if (!std::isfinite(fields.lo) || !std::isfinite(fields.hi) ||
      !(fields.lo < fields.hi)) {
    return DataLossError("column file " + path + " has an impossible domain");
  }
  if (fields.bits < 0 || fields.bits > 62) {
    return DataLossError("column file " + path +
                         " has impossible domain bits " +
                         std::to_string(fields.bits));
  }
  if (fields.name_length > kMaxNameLength) {
    return DataLossError("column file " + path + " has an impossible name");
  }
  ColumnFileHeader header;
  header.name.assign(reinterpret_cast<const char*>(bytes + kNameOffset),
                     fields.name_length);
  header.domain.lo = fields.lo;
  header.domain.hi = fields.hi;
  header.domain.discrete = (fields.flags & kFlagDiscrete) != 0;
  header.domain.bits = fields.bits;
  header.row_count = fields.row_count;
  return header;
}

}  // namespace

StatusOr<ColumnFileWriter> ColumnFileWriter::Open(const std::string& path,
                                                  const std::string& name,
                                                  const Domain& domain) {
  SELEST_RETURN_IF_ERROR(ValidateDomainForFile(domain));
  if (name.size() > kMaxNameLength) {
    return InvalidArgumentError("column name exceeds " +
                                std::to_string(kMaxNameLength) + " bytes");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("fopen(" + path + "): " + std::strerror(errno));
  }
  HeaderFields fields;
  fields.version = kColumnFileVersion;
  fields.flags = domain.discrete ? kFlagDiscrete : 0u;
  fields.lo = domain.lo;
  fields.hi = domain.hi;
  fields.bits = static_cast<int32_t>(domain.bits);
  fields.name_length = static_cast<uint32_t>(name.size());
  fields.row_count = 0;  // patched by Finish
  uint8_t header[kColumnFileHeaderBytes];
  PackHeader(fields, name, header);
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header)) {
    std::fclose(file);
    return InternalError("short header write to " + path);
  }
  return ColumnFileWriter(file, path);
}

ColumnFileWriter::~ColumnFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

ColumnFileWriter::ColumnFileWriter(ColumnFileWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      rows_written_(other.rows_written_) {}

ColumnFileWriter& ColumnFileWriter::operator=(
    ColumnFileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    rows_written_ = other.rows_written_;
  }
  return *this;
}

Status ColumnFileWriter::Append(std::span<const double> values) {
  if (file_ == nullptr) {
    return FailedPreconditionError("column file writer already finished");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return InvalidArgumentError("column value at append offset " +
                                  std::to_string(i) + " is not finite");
    }
  }
  if (values.empty()) return Status::Ok();
  const size_t written =
      std::fwrite(values.data(), sizeof(double), values.size(), file_);
  if (written != values.size()) {
    return InternalError("short value write to " + path_);
  }
  rows_written_ += values.size();
  return Status::Ok();
}

Status ColumnFileWriter::Finish() {
  if (file_ == nullptr) {
    return FailedPreconditionError("column file writer already finished");
  }
  std::FILE* file = std::exchange(file_, nullptr);
  Status status = Status::Ok();
  if (std::fseek(file, 40, SEEK_SET) != 0 ||
      std::fwrite(&rows_written_, sizeof(rows_written_), 1, file) != 1 ||
      std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
    status = InternalError("failed to finalize " + path_);
  }
  if (std::fclose(file) != 0 && status.ok()) {
    status = InternalError("failed to close " + path_);
  }
  return status;
}

Status WriteColumnFile(const std::string& path, const std::string& name,
                       const Domain& domain, std::span<const double> values) {
  SELEST_ASSIGN_OR_RETURN(ColumnFileWriter writer,
                          ColumnFileWriter::Open(path, name, domain));
  SELEST_RETURN_IF_ERROR(writer.Append(values));
  return writer.Finish();
}

StatusOr<ColumnFileHeader> ReadColumnFileHeader(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    const int err = errno;
    if (err == ENOENT) return NotFoundError("no such column file: " + path);
    return InternalError("fopen(" + path + "): " + std::strerror(err));
  }
  uint8_t bytes[kColumnFileHeaderBytes];
  const size_t read = std::fread(bytes, 1, sizeof(bytes), file);
  std::fclose(file);
  return ParseHeader(bytes, read, path);
}

StatusOr<std::unique_ptr<MmapColumnSource>> MmapColumnSource::Open(
    const std::string& path, size_t chunk_rows) {
  if (chunk_rows == 0) {
    return InvalidArgumentError("chunk_rows must be positive");
  }
  SELEST_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  SELEST_ASSIGN_OR_RETURN(ColumnFileHeader header,
                          ParseHeader(file.data(), file.size(), path));
  const uint64_t payload = file.size() - kColumnFileHeaderBytes;
  if (payload != header.row_count * sizeof(double)) {
    return DataLossError(
        "column file " + path + " declares " +
        std::to_string(header.row_count) + " rows but holds " +
        std::to_string(payload / sizeof(double)) +
        " (unfinished writer or truncation)");
  }
  return std::unique_ptr<MmapColumnSource>(new MmapColumnSource(
      std::move(file), std::move(header), chunk_rows));
}

std::span<const double> MmapColumnSource::NextChunk() {
  if (next_ >= header_.row_count) return {};
  const uint64_t remaining = header_.row_count - next_;
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(chunk_rows_, remaining));
  const double* values = reinterpret_cast<const double*>(
      file_.data() + kColumnFileHeaderBytes);
  const std::span<const double> chunk(values + next_, take);
  next_ += take;
  return chunk;
}

}  // namespace selest
