#include "src/data/relation.h"

#include <set>

namespace selest {

StatusOr<Relation> Relation::Create(
    std::string name, std::vector<std::shared_ptr<Dataset>> columns) {
  if (columns.empty()) {
    return InvalidArgumentError("relation needs at least one column");
  }
  std::set<std::string> names;
  for (const auto& column : columns) {
    if (column == nullptr) {
      return InvalidArgumentError("null column");
    }
  }
  const size_t records = columns.front()->size();
  for (const auto& column : columns) {
    if (column->size() != records) {
      return InvalidArgumentError("column '" + column->name() + "' has " +
                                  std::to_string(column->size()) +
                                  " records, expected " +
                                  std::to_string(records));
    }
    if (!names.insert(column->name()).second) {
      return InvalidArgumentError("duplicate column name '" + column->name() +
                                  "'");
    }
  }
  return Relation(std::move(name), std::move(columns), records);
}

StatusOr<std::shared_ptr<Dataset>> Relation::Column(
    const std::string& attribute) const {
  for (const auto& column : columns_) {
    if (column->name() == attribute) return column;
  }
  return NotFoundError("no column named '" + attribute + "' in relation '" +
                       name_ + "'");
}

StatusOr<size_t> Relation::CountRange(const std::string& attribute, double a,
                                      double b) const {
  auto column = Column(attribute);
  if (!column.ok()) return column.status();
  return column.value()->CountInRange(a, b);
}

}  // namespace selest
