#include "src/data/distribution.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/check.h"

namespace selest {
namespace {

// Step for finite-difference density derivatives. Relative to |x| so the
// default works across domain scales.
double FiniteDifferenceStep(double x) {
  return 1e-4 * (std::fabs(x) + 1.0);
}

}  // namespace

double Distribution::PdfDerivative(double x) const {
  const double h = FiniteDifferenceStep(x);
  return (Pdf(x + h) - Pdf(x - h)) / (2.0 * h);
}

double Distribution::PdfSecondDerivative(double x) const {
  const double h = FiniteDifferenceStep(x);
  return (Pdf(x + h) - 2.0 * Pdf(x) + Pdf(x - h)) / (h * h);
}

// ---------------------------------------------------------------- Uniform

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  SELEST_CHECK_LT(lo, hi);
}

double UniformDistribution::Sample(Rng& rng) const {
  return lo_ + (hi_ - lo_) * rng.NextDouble();
}

double UniformDistribution::Pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double UniformDistribution::Cdf(double x) const {
  if (x < lo_) return 0.0;
  if (x > hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::PdfDerivative(double) const { return 0.0; }
double UniformDistribution::PdfSecondDerivative(double) const { return 0.0; }

std::string UniformDistribution::name() const {
  return "uniform(" + std::to_string(lo_) + ", " + std::to_string(hi_) + ")";
}

// ----------------------------------------------------------------- Normal

NormalDistribution::NormalDistribution(double mean, double sigma)
    : mean_(mean), sigma_(sigma) {
  SELEST_CHECK_GT(sigma, 0.0);
}

double NormalDistribution::Sample(Rng& rng) const {
  return mean_ + sigma_ * rng.NextGaussian();
}

double NormalDistribution::Pdf(double x) const {
  const double z = (x - mean_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double NormalDistribution::Cdf(double x) const {
  const double z = (x - mean_) / (sigma_ * std::numbers::sqrt2);
  return 0.5 * std::erfc(-z);
}

double NormalDistribution::PdfDerivative(double x) const {
  const double z = (x - mean_) / sigma_;
  return -z / sigma_ * Pdf(x);
}

double NormalDistribution::PdfSecondDerivative(double x) const {
  const double z = (x - mean_) / sigma_;
  return (z * z - 1.0) / (sigma_ * sigma_) * Pdf(x);
}

std::string NormalDistribution::name() const {
  return "normal(" + std::to_string(mean_) + ", " + std::to_string(sigma_) +
         ")";
}

// ------------------------------------------------------------ Exponential

ExponentialDistribution::ExponentialDistribution(double rate, double origin)
    : rate_(rate), origin_(origin) {
  SELEST_CHECK_GT(rate, 0.0);
}

double ExponentialDistribution::Sample(Rng& rng) const {
  return origin_ + rng.NextExponential(rate_);
}

double ExponentialDistribution::Pdf(double x) const {
  if (x < origin_) return 0.0;
  return rate_ * std::exp(-rate_ * (x - origin_));
}

double ExponentialDistribution::Cdf(double x) const {
  if (x < origin_) return 0.0;
  return 1.0 - std::exp(-rate_ * (x - origin_));
}

double ExponentialDistribution::PdfDerivative(double x) const {
  if (x < origin_) return 0.0;
  return -rate_ * Pdf(x);
}

double ExponentialDistribution::PdfSecondDerivative(double x) const {
  if (x < origin_) return 0.0;
  return rate_ * rate_ * Pdf(x);
}

std::string ExponentialDistribution::name() const {
  return "exponential(rate=" + std::to_string(rate_) + ")";
}

// ------------------------------------------------------------------- Zipf

ZipfDistribution::ZipfDistribution(int num_values, double skew)
    : num_values_(num_values), skew_(skew) {
  SELEST_CHECK_GE(num_values, 1);
  SELEST_CHECK_GT(skew, 0.0);
  cumulative_.resize(num_values_);
  double total = 0.0;
  for (int k = 0; k < num_values_; ++k) {
    total += std::pow(k + 1.0, -skew_);
    cumulative_[k] = total;
  }
  for (double& c : cumulative_) c /= total;
}

double ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<double>(it - cumulative_.begin());
}

double ZipfDistribution::Pdf(double x) const {
  const auto k = static_cast<int>(std::round(x));
  if (k < 0 || k >= num_values_) return 0.0;
  return k == 0 ? cumulative_[0] : cumulative_[k] - cumulative_[k - 1];
}

double ZipfDistribution::Cdf(double x) const {
  const auto k = static_cast<int>(std::floor(x));
  if (k < 0) return 0.0;
  if (k >= num_values_) return 1.0;
  return cumulative_[k];
}

std::string ZipfDistribution::name() const {
  return "zipf(" + std::to_string(num_values_) + ", " +
         std::to_string(skew_) + ")";
}

// ---------------------------------------------------------------- Mixture

MixtureDistribution::MixtureDistribution(
    std::vector<std::unique_ptr<Distribution>> components,
    std::vector<double> weights)
    : components_(std::move(components)), weights_(std::move(weights)) {
  SELEST_CHECK(!components_.empty());
  SELEST_CHECK_EQ(components_.size(), weights_.size());
  double total = 0.0;
  for (double w : weights_) {
    SELEST_CHECK_GT(w, 0.0);
    total += w;
  }
  cum_weights_.resize(weights_.size());
  double prefix = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] /= total;
    prefix += weights_[i];
    cum_weights_[i] = prefix;
  }
  cum_weights_.back() = 1.0;
}

double MixtureDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it =
      std::lower_bound(cum_weights_.begin(), cum_weights_.end(), u);
  const size_t index =
      std::min(static_cast<size_t>(it - cum_weights_.begin()),
               components_.size() - 1);
  return components_[index]->Sample(rng);
}

double MixtureDistribution::Pdf(double x) const {
  double pdf = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    pdf += weights_[i] * components_[i]->Pdf(x);
  }
  return pdf;
}

double MixtureDistribution::Cdf(double x) const {
  double cdf = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    cdf += weights_[i] * components_[i]->Cdf(x);
  }
  return cdf;
}

std::string MixtureDistribution::name() const {
  return "mixture(" + std::to_string(components_.size()) + " components)";
}

}  // namespace selest
