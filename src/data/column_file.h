// Binary column files: the on-disk backend of the out-of-core data layer.
//
// Layout (little-endian, fixed 4096-byte header so the value array starts
// page-aligned for mmap):
//
//   offset 0   magic   "SELESTcf"                     (8 bytes)
//          8   u32     format version (1)
//         12   u32     flags (bit 0: discrete domain)
//         16   f64     domain.lo
//         24   f64     domain.hi
//         32   i32     domain.bits
//         36   u32     name length L (<= 255)
//         40   u64     row count
//         48   char[L] name bytes, then zero padding to 4096
//       4096   f64[row count] values
//
// The row count is patched by ColumnFileWriter::Finish, so a crash while
// appending leaves a header whose count disagrees with the file size —
// detected on open as kDataLoss, never served. Damage taxonomy follows
// DESIGN.md §8: wrong magic / impossible header fields → kDataLoss,
// truncated header → kOutOfRange, future version → kFailedPrecondition.
#ifndef SELEST_DATA_COLUMN_FILE_H_
#define SELEST_DATA_COLUMN_FILE_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

#include "src/data/column_source.h"
#include "src/data/domain.h"
#include "src/data/mmap_file.h"
#include "src/util/status.h"

namespace selest {

inline constexpr size_t kColumnFileHeaderBytes = 4096;
inline constexpr uint32_t kColumnFileVersion = 1;

struct ColumnFileHeader {
  std::string name;
  Domain domain;
  uint64_t row_count = 0;
};

// Streams values into a column file without holding them: open, append in
// chunks, finish (which patches the row count and flushes). Abandoning a
// writer without Finish leaves an openable-but-rejected file (see above).
class ColumnFileWriter {
 public:
  // Creates/truncates `path`. The domain must be a finite non-empty range
  // and the name at most 255 bytes.
  static StatusOr<ColumnFileWriter> Open(const std::string& path,
                                         const std::string& name,
                                         const Domain& domain);

  ~ColumnFileWriter();
  ColumnFileWriter(ColumnFileWriter&& other) noexcept;
  ColumnFileWriter& operator=(ColumnFileWriter&& other) noexcept;
  ColumnFileWriter(const ColumnFileWriter&) = delete;
  ColumnFileWriter& operator=(const ColumnFileWriter&) = delete;

  // Appends `values` to the file. kInvalidArgument on non-finite values
  // (a column file must never poison downstream estimators),
  // kFailedPrecondition after Finish, kInternal on a write failure.
  Status Append(std::span<const double> values);

  uint64_t rows_written() const { return rows_written_; }

  // Patches the row count, flushes, and closes. Required for the file to
  // open; further Appends fail.
  Status Finish();

 private:
  ColumnFileWriter(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t rows_written_ = 0;
};

// Convenience one-shot writer for values already in memory.
Status WriteColumnFile(const std::string& path, const std::string& name,
                       const Domain& domain, std::span<const double> values);

// Validates and returns the header without mapping the value array.
StatusOr<ColumnFileHeader> ReadColumnFileHeader(const std::string& path);

// mmap-backed ColumnSource over a column file: chunks are subspans of the
// mapping, so a pass touches each page once and resident memory stays at
// the OS page cache's discretion, not the process heap's. Lifetime rule:
// chunks die with the source (DESIGN.md §13).
class MmapColumnSource : public ColumnSource {
 public:
  static StatusOr<std::unique_ptr<MmapColumnSource>> Open(
      const std::string& path, size_t chunk_rows = kDefaultChunkRows);

  const std::string& name() const override { return header_.name; }
  const Domain& domain() const override { return header_.domain; }
  uint64_t rows() const override { return header_.row_count; }
  size_t chunk_rows() const override { return chunk_rows_; }
  void Reset() override { next_ = 0; }
  std::span<const double> NextChunk() override;

 private:
  MmapColumnSource(MmapFile file, ColumnFileHeader header, size_t chunk_rows)
      : file_(std::move(file)),
        header_(std::move(header)),
        chunk_rows_(chunk_rows) {}

  MmapFile file_;
  ColumnFileHeader header_;
  size_t chunk_rows_;
  uint64_t next_ = 0;
};

}  // namespace selest

#endif  // SELEST_DATA_COLUMN_FILE_H_
