// Metric attribute domains.
//
// The paper studies metric attributes with large domains: the data files map
// records onto the integer domain [0, 2^p − 1] where p is a parameter
// (Table 2). A Domain describes the value range of an attribute and whether
// values are quantized to integers (discrete metric domain) or not
// (continuous metric domain).
#ifndef SELEST_DATA_DOMAIN_H_
#define SELEST_DATA_DOMAIN_H_

#include <cstdint>
#include <string>

namespace selest {

// The value range of a metric attribute. Passive data (struct per style
// guide); invariants (lo < hi) are validated by the factories below and by
// consumers.
struct Domain {
  double lo = 0.0;
  double hi = 1.0;
  // True when values are integers in [lo, hi] (discrete metric domain,
  // duplicates possible); false for a continuous domain.
  bool discrete = false;
  // For p-bit integer domains, the number of bits (0 when not applicable).
  int bits = 0;

  double width() const { return hi - lo; }

  // Number of distinct representable values; 0 for continuous domains.
  uint64_t cardinality() const;

  // Clamps x into [lo, hi].
  double Clamp(double x) const;

  // True iff lo <= x <= hi.
  bool Contains(double x) const;

  // Rounds x to the nearest representable value (identity for continuous
  // domains); does not clamp.
  double Quantize(double x) const;

  std::string ToString() const;
};

// The integer domain [0, 2^p − 1] used throughout the paper's experiments.
// Requires 1 <= bits <= 62.
Domain BitDomain(int bits);

// A continuous domain [lo, hi]. Requires lo < hi.
Domain ContinuousDomain(double lo, double hi);

}  // namespace selest

#endif  // SELEST_DATA_DOMAIN_H_
