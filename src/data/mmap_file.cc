#include "src/data/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace selest {

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOENT) {
      return NotFoundError("no such file: " + path);
    }
    return InternalError("open(" + path + "): " + std::strerror(err));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return InternalError("fstat(" + path + "): " + std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point either way.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return InternalError("mmap(" + path + "): " + std::strerror(map_err));
  }
  return MmapFile(static_cast<const uint8_t*>(mapping), size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace selest
