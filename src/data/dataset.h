// Data sets: named columns of attribute values over a metric domain.
#ifndef SELEST_DATA_DATASET_H_
#define SELEST_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {

// A single-attribute data file in the sense of Table 2: a name, the domain
// of the attribute, and the attribute values of all records.
class Dataset {
 public:
  Dataset(std::string name, Domain domain, std::vector<double> values);

  const std::string& name() const { return name_; }
  const Domain& domain() const { return domain_; }
  const std::vector<double>& values() const { return values_; }
  size_t size() const { return values_.size(); }

  // Values sorted ascending; computed lazily on first use and cached.
  // The sorted view backs exact selectivity counts and equi-depth bins.
  const std::vector<double>& sorted_values() const;

  // Number of distinct attribute values (computed from the sorted view).
  size_t CountDistinct() const;

  // Exact number of records with a <= value <= b.
  size_t CountInRange(double a, double b) const;

 private:
  std::string name_;
  Domain domain_;
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazily filled cache
};

// Draws `count` records from `distribution`, quantizes them to the domain's
// resolution and discards records falling outside the domain, exactly as the
// paper maps its distributions to integer domains (§5.1.1). Aborts if the
// rejection rate exceeds 99% (the distribution misses the domain).
Dataset GenerateDataset(std::string name, const Distribution& distribution,
                        size_t count, const Domain& domain, Rng& rng);

}  // namespace selest

#endif  // SELEST_DATA_DATASET_H_
