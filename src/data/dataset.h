// Data sets: named columns of attribute values over a metric domain.
#ifndef SELEST_DATA_DATASET_H_
#define SELEST_DATA_DATASET_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {

// A single-attribute data file in the sense of Table 2: a name, the domain
// of the attribute, and the attribute values of all records.
class Dataset {
 public:
  // Requires a non-empty value vector with every value inside `domain`.
  Dataset(std::string name, Domain domain, std::vector<double> values);

  // Adopts `values` that are already sorted ascending (checked). The
  // sorted view then aliases the value vector itself, so sorted_values(),
  // CountInRange and CountDistinct never allocate the cached full copy —
  // which would double resident memory for a large column. Build paths
  // that already hold sorted data (merged sorted chunks, loaded sorted
  // snapshots) should construct through here.
  static Dataset FromSortedValues(std::string name, Domain domain,
                                  std::vector<double> values);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  // A moved-from Dataset is a valid *empty* dataset (size() == 0): anything
  // still holding a reference to it — e.g. a GroundTruth — sees zero
  // records, which is why GroundTruth::Selectivity guards its division.
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;

  const std::string& name() const { return name_; }
  const Domain& domain() const { return domain_; }
  const std::vector<double>& values() const { return values_; }
  size_t size() const { return values_.size(); }

  // Values sorted ascending; computed lazily on first use and cached.
  // The sorted view backs exact selectivity counts and equi-depth bins.
  // Thread-safe: the cache fills under a std::call_once, so concurrent
  // ground-truth lookups from the parallel experiment runner are safe.
  const std::vector<double>& sorted_values() const;

  // Number of distinct attribute values (computed from the sorted view).
  size_t CountDistinct() const;

  // Exact number of records with a <= value <= b.
  size_t CountInRange(double a, double b) const;

 private:
  // Lazily filled sorted cache. Heap-allocated so Dataset stays movable and
  // copyable (a copy shares the cache, which is sound: the cache content is
  // a pure function of values_, which the copy shares the value of).
  struct SortedCache {
    std::once_flag once;
    std::vector<double> values;
  };

  std::string name_;
  Domain domain_;
  std::vector<double> values_;
  // True when values_ is known sorted ascending; sorted_values() then
  // returns values_ directly and the cache stays empty.
  bool values_sorted_ = false;
  std::shared_ptr<SortedCache> sorted_cache_;
};

// Draws `count` records from `distribution`, quantizes them to the domain's
// resolution and discards records falling outside the domain, exactly as the
// paper maps its distributions to integer domains (§5.1.1). Aborts if the
// rejection rate exceeds 99% (the distribution misses the domain).
Dataset GenerateDataset(std::string name, const Distribution& distribution,
                        size_t count, const Domain& domain, Rng& rng);

}  // namespace selest

#endif  // SELEST_DATA_DATASET_H_
