#include "src/query/ground_truth.h"

// Header-only today; this translation unit anchors the target and keeps a
// stable place for future out-of-line members.
