#include "src/query/streaming_ground_truth.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace selest {

StatusOr<std::vector<size_t>> StreamingExactCounts(
    ColumnSource& source, std::span<const RangeQuery> queries) {
  std::vector<size_t> counts(queries.size(), 0);
  std::vector<double> buffer;
  buffer.reserve(source.chunk_rows());
  source.Reset();
  uint64_t offset = 0;
  for (std::span<const double> chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    buffer.assign(chunk.begin(), chunk.end());
    for (size_t i = 0; i < buffer.size(); ++i) {
      if (std::isnan(buffer[i])) {
        return InvalidArgumentError("row " + std::to_string(offset + i) +
                                    " is NaN; exact counts need ordered rows");
      }
    }
    std::sort(buffer.begin(), buffer.end());
    for (size_t q = 0; q < queries.size(); ++q) {
      const RangeQuery& query = queries[q];
      if (query.a > query.b) continue;
      const auto lo =
          std::lower_bound(buffer.begin(), buffer.end(), query.a);
      const auto hi = std::upper_bound(buffer.begin(), buffer.end(), query.b);
      counts[q] += static_cast<size_t>(hi - lo);
    }
    offset += chunk.size();
  }
  return counts;
}

}  // namespace selest
