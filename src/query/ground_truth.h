// Exact selectivities: the ground truth every estimator is scored against.
//
// The instance selectivity of Q(a, b) is |{r : a <= r.A <= b}| / N (§2).
// GroundTruth answers it from the sorted column in O(log N).
#ifndef SELEST_QUERY_GROUND_TRUTH_H_
#define SELEST_QUERY_GROUND_TRUTH_H_

#include <cstddef>

#include "src/data/dataset.h"
#include "src/query/range_query.h"

namespace selest {

// Exact evaluator over one dataset. Holds a reference: the dataset must
// outlive the GroundTruth.
class GroundTruth {
 public:
  explicit GroundTruth(const Dataset& data) : data_(data) {}

  // Number of records in [q.a, q.b].
  size_t Count(const RangeQuery& q) const {
    return data_.CountInRange(q.a, q.b);
  }

  // Instance selectivity: Count / N. An empty dataset (N = 0, reachable
  // when the referenced Dataset was moved from) has no records in any
  // range, so the selectivity is 0 — not the NaN the unguarded division
  // would produce.
  double Selectivity(const RangeQuery& q) const {
    if (data_.size() == 0) return 0.0;
    return static_cast<double>(Count(q)) / static_cast<double>(data_.size());
  }

  size_t num_records() const { return data_.size(); }

 private:
  const Dataset& data_;
};

}  // namespace selest

#endif  // SELEST_QUERY_GROUND_TRUTH_H_
