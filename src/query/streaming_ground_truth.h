// Exact selectivities over a column that never fits in memory.
//
// GroundTruth (ground_truth.h) answers from the fully sorted column;
// StreamingExactCounts answers the same counts from a chunk stream: each
// chunk is copied, sorted, binary-searched per query, and the per-chunk
// counts are summed. Counts are exact integers, so the per-chunk sum
// equals the whole-column count regardless of chunk boundaries — the
// streaming ground truth is bit-identical to GroundTruth on the
// materialized column, at one chunk of resident memory.
#ifndef SELEST_QUERY_STREAMING_GROUND_TRUTH_H_
#define SELEST_QUERY_STREAMING_GROUND_TRUTH_H_

#include <span>
#include <vector>

#include "src/data/column_source.h"
#include "src/query/range_query.h"
#include "src/util/status.h"

namespace selest {

// Exact per-query result sizes |{r : q.a <= r <= q.b}| for every query,
// computed in one pass over `source` (Reset first). A non-finite row is
// kInvalidArgument (a NaN cannot be ordered, so it cannot be counted).
StatusOr<std::vector<size_t>> StreamingExactCounts(
    ColumnSource& source, std::span<const RangeQuery> queries);

}  // namespace selest

#endif  // SELEST_QUERY_STREAMING_GROUND_TRUTH_H_
