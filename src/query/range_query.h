// Range queries Q(a, b): retrieve all records r with a <= r.A <= b (§2).
#ifndef SELEST_QUERY_RANGE_QUERY_H_
#define SELEST_QUERY_RANGE_QUERY_H_

namespace selest {

struct RangeQuery {
  double a = 0.0;
  double b = 0.0;

  double width() const { return b - a; }
  double center() const { return 0.5 * (a + b); }
};

}  // namespace selest

#endif  // SELEST_QUERY_RANGE_QUERY_H_
