// Size-separated query workloads (§5.1.2).
//
// A query file F_D(s) holds range queries of one fixed size s (a fraction of
// the domain width). Query positions follow the data distribution — each
// query is centered on a randomly drawn record — and positions too close to
// the domain boundary are rejected so no query sticks out of the domain.
#ifndef SELEST_QUERY_WORKLOAD_H_
#define SELEST_QUERY_WORKLOAD_H_

#include <cstddef>
#include <vector>

#include "src/data/dataset.h"
#include "src/query/range_query.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace selest {

struct WorkloadConfig {
  // Query width as a fraction of the domain width (the paper uses 0.01,
  // 0.02, 0.05, 0.10).
  double query_fraction = 0.01;
  // Number of queries in the file (the paper uses 1,000).
  size_t num_queries = 1000;
  // Queries whose exact result is empty are rejected (they would make the
  // relative error undefined).
  bool reject_empty = true;
};

// Generates a query file for `data`. Positions are drawn from the records
// themselves, so query placement follows the data distribution as in the
// paper; queries overlapping a domain boundary are re-drawn. Status-first:
// an invalid config is kInvalidArgument, and rejection-sampling exhaustion
// (every candidate rejected for 1000·num_queries draws — e.g. all data
// piled against a boundary, or reject_empty on a query size no record
// satisfies) is kResourceExhausted, never an abort.
StatusOr<std::vector<RangeQuery>> TryGenerateWorkload(
    const Dataset& data, const WorkloadConfig& config, Rng& rng);

// Aborting form of TryGenerateWorkload, for call sites with a config and
// dataset already known to be generatable.
std::vector<RangeQuery> GenerateWorkload(const Dataset& data,
                                         const WorkloadConfig& config,
                                         Rng& rng);

// Generates queries of fixed width whose centers sweep the domain uniformly
// from left edge to right edge in `num_queries` equal steps, clamped so each
// query stays inside the domain. Used by the boundary-error experiments
// (Figs. 3 and 10), which plot error as a function of the query position.
std::vector<RangeQuery> GeneratePositionSweep(const Dataset& data,
                                              double query_fraction,
                                              size_t num_queries);

}  // namespace selest

#endif  // SELEST_QUERY_WORKLOAD_H_
