#include "src/query/workload.h"

#include <algorithm>

#include "src/util/check.h"

namespace selest {

StatusOr<std::vector<RangeQuery>> TryGenerateWorkload(
    const Dataset& data, const WorkloadConfig& config, Rng& rng) {
  if (!(config.query_fraction > 0.0 && config.query_fraction <= 1.0)) {
    return InvalidArgumentError("query_fraction must be in (0, 1]");
  }
  if (config.num_queries == 0) {
    return InvalidArgumentError("num_queries must be positive");
  }
  const Domain& domain = data.domain();
  const double width = config.query_fraction * domain.width();
  const double half = 0.5 * width;

  std::vector<RangeQuery> queries;
  queries.reserve(config.num_queries);
  size_t attempts = 0;
  const size_t max_attempts = 1000 * config.num_queries;
  while (queries.size() < config.num_queries) {
    if (attempts >= max_attempts) {
      return ResourceExhaustedError(
          "workload generation rejected " + std::to_string(attempts) +
          " candidate queries before reaching " +
          std::to_string(config.num_queries) +
          " (data too concentrated near a boundary, or no non-empty query "
          "of this size exists)");
    }
    ++attempts;
    // Query position follows the data distribution: center on a record.
    const double center =
        data.values()[rng.NextUint64(data.size())];
    // Reject positions too close to the boundary (§5.1.2).
    if (center - half < domain.lo || center + half > domain.hi) continue;
    const RangeQuery query{center - half, center + half};
    if (config.reject_empty && data.CountInRange(query.a, query.b) == 0) {
      continue;
    }
    queries.push_back(query);
  }
  return queries;
}

std::vector<RangeQuery> GenerateWorkload(const Dataset& data,
                                         const WorkloadConfig& config,
                                         Rng& rng) {
  auto queries = TryGenerateWorkload(data, config, rng);
  SELEST_CHECK(queries.ok());
  return std::move(queries).value();
}

std::vector<RangeQuery> GeneratePositionSweep(const Dataset& data,
                                              double query_fraction,
                                              size_t num_queries) {
  SELEST_CHECK_GT(query_fraction, 0.0);
  SELEST_CHECK_LE(query_fraction, 1.0);
  SELEST_CHECK_GE(num_queries, 2u);
  const Domain& domain = data.domain();
  const double width = query_fraction * domain.width();
  const double half = 0.5 * width;
  std::vector<RangeQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    const double t = static_cast<double>(i) / (num_queries - 1.0);
    double center = domain.lo + t * domain.width();
    center = std::clamp(center, domain.lo + half, domain.hi - half);
    queries.push_back({center - half, center + half});
  }
  return queries;
}

}  // namespace selest
