// The durable tier of the catalog: estimator snapshots as files.
//
// One file per CatalogKey, written atomically (temporary sibling +
// rename), so readers never observe a torn snapshot. Corruption on disk —
// truncation, bit flips, a future format version — surfaces as Status
// from Get (see est/estimator_snapshot.h for the taxonomy); the catalog
// reacts by rebuilding from the sample and writing back.
#ifndef SELEST_CATALOG_SNAPSHOT_STORE_H_
#define SELEST_CATALOG_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/catalog/serving_cache.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class SnapshotStore {
 public:
  // Snapshots live under `directory` (created on first Put if missing).
  explicit SnapshotStore(std::string directory);

  // Serializes and atomically persists the estimator's snapshot.
  Status Put(const CatalogKey& key, const SelectivityEstimator& estimator);

  // Loads and validates the snapshot: kNotFound when no file exists,
  // kDataLoss / kOutOfRange / kFailedPrecondition / kInvalidArgument per
  // the envelope contract when the bytes are damaged.
  StatusOr<std::unique_ptr<SelectivityEstimator>> Get(
      const CatalogKey& key) const;

  bool Contains(const CatalogKey& key) const;

  // Removes the snapshot file; OK when it was already absent.
  Status Delete(const CatalogKey& key);

  // The file path a key maps to (exposed so corruption tests can damage
  // snapshots in place).
  std::string PathFor(const CatalogKey& key) const;

  const std::string& directory() const { return directory_; }

  uint64_t puts() const { return puts_.load(std::memory_order_relaxed); }
  uint64_t gets() const { return gets_.load(std::memory_order_relaxed); }

 private:
  std::string directory_;

  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> gets_{0};
};

}  // namespace selest

#endif  // SELEST_CATALOG_SNAPSHOT_STORE_H_
