// The durable tier of the catalog: estimator snapshots as files.
//
// One file per CatalogKey, written atomically (temporary sibling +
// rename), so readers never observe a torn snapshot. Corruption on disk —
// truncation, bit flips, a future format version — surfaces as Status
// from Get (see est/estimator_snapshot.h for the taxonomy); the catalog
// reacts by rebuilding from the sample and writing back.
#ifndef SELEST_CATALOG_SNAPSHOT_STORE_H_
#define SELEST_CATALOG_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/catalog/serving_cache.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class SnapshotStore {
 public:
  // Snapshots live under `directory` (created on first Put if missing).
  // Construction sweeps orphaned `*.snapshot.tmp*` siblings left by a
  // crash between temporary write and rename (the `store/rename` crash
  // point) — they are invisible to every read path and would otherwise
  // leak forever.
  explicit SnapshotStore(std::string directory);

  // Serializes and atomically persists the estimator's snapshot.
  // `file_crc_out` (may be null) receives the CRC32 of the whole written
  // file — the token WAL snapshot-mark records carry so recovery can
  // prove which marks describe the snapshot actually on disk.
  Status Put(const CatalogKey& key, const SelectivityEstimator& estimator,
             uint32_t* file_crc_out = nullptr);

  // Loads and validates the snapshot: kNotFound when no file exists,
  // kDataLoss / kOutOfRange / kFailedPrecondition / kInvalidArgument per
  // the envelope contract when the bytes are damaged.
  StatusOr<std::unique_ptr<SelectivityEstimator>> Get(
      const CatalogKey& key) const;

  bool Contains(const CatalogKey& key) const;

  // Removes the snapshot file; OK when it was already absent.
  Status Delete(const CatalogKey& key);

  // The file path a key maps to (exposed so corruption tests can damage
  // snapshots in place).
  std::string PathFor(const CatalogKey& key) const;

  // Filesystem-safe label of a key: sanitized relation.attribute plus the
  // key's identity hash. Shared with the per-column WAL directory naming,
  // so a column's snapshot and its log are visibly siblings on disk.
  static std::string LabelFor(const CatalogKey& key);

  const std::string& directory() const { return directory_; }

  uint64_t puts() const { return puts_.load(std::memory_order_relaxed); }
  uint64_t gets() const { return gets_.load(std::memory_order_relaxed); }
  // Orphaned temporary files removed by the construction sweep.
  uint64_t swept_tmp_files() const { return swept_tmp_files_; }

 private:
  std::string directory_;
  uint64_t swept_tmp_files_ = 0;

  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> gets_{0};
};

}  // namespace selest

#endif  // SELEST_CATALOG_SNAPSHOT_STORE_H_
