#include "src/catalog/statistics_catalog.h"

#include <cmath>

#include "src/est/estimator_snapshot.h"
#include "src/sample/sampler.h"

namespace selest {
namespace {

constexpr uint32_t kFormatVersion = 1;

}  // namespace

void ColumnStatistics::Serialize(ByteWriter& writer) const {
  writer.WriteU32(kFormatVersion);
  writer.WriteString(column);
  writer.WriteDouble(domain.lo);
  writer.WriteDouble(domain.hi);
  writer.WriteU32(domain.discrete ? 1 : 0);
  writer.WriteU32(static_cast<uint32_t>(domain.bits));
  writer.WriteU64(num_records);
  writer.WriteU32(static_cast<uint32_t>(config.kind));
  writer.WriteU32(static_cast<uint32_t>(config.smoothing));
  writer.WriteDouble(config.fixed_smoothing);
  writer.WriteU32(static_cast<uint32_t>(config.dpi_stages));
  writer.WriteU32(static_cast<uint32_t>(config.ash_shifts));
  writer.WriteU32(static_cast<uint32_t>(config.kernel));
  writer.WriteU32(static_cast<uint32_t>(config.boundary));
  writer.WriteDoubleVector(sample);
}

StatusOr<ColumnStatistics> ColumnStatistics::Deserialize(ByteReader& reader) {
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kFormatVersion) {
    return InvalidArgumentError("unsupported catalog format version " +
                                std::to_string(version.value()));
  }
  ColumnStatistics statistics;
  auto column = reader.ReadString();
  if (!column.ok()) return column.status();
  statistics.column = std::move(column).value();

  auto lo = reader.ReadDouble();
  if (!lo.ok()) return lo.status();
  auto hi = reader.ReadDouble();
  if (!hi.ok()) return hi.status();
  auto discrete = reader.ReadU32();
  if (!discrete.ok()) return discrete.status();
  auto bits = reader.ReadU32();
  if (!bits.ok()) return bits.status();
  if (!(lo.value() < hi.value()) || !std::isfinite(lo.value()) ||
      !std::isfinite(hi.value())) {
    return InvalidArgumentError("corrupt catalog entry: bad domain");
  }
  statistics.domain.lo = lo.value();
  statistics.domain.hi = hi.value();
  statistics.domain.discrete = discrete.value() != 0;
  statistics.domain.bits = static_cast<int>(bits.value());

  auto num_records = reader.ReadU64();
  if (!num_records.ok()) return num_records.status();
  statistics.num_records = num_records.value();

  auto kind = reader.ReadU32();
  if (!kind.ok()) return kind.status();
  if (kind.value() > static_cast<uint32_t>(EstimatorKind::kOnlineLearning)) {
    return InvalidArgumentError("corrupt catalog entry: bad estimator kind");
  }
  statistics.config.kind = static_cast<EstimatorKind>(kind.value());
  auto smoothing = reader.ReadU32();
  if (!smoothing.ok()) return smoothing.status();
  if (smoothing.value() > static_cast<uint32_t>(SmoothingRule::kFixed)) {
    return InvalidArgumentError("corrupt catalog entry: bad smoothing rule");
  }
  statistics.config.smoothing = static_cast<SmoothingRule>(smoothing.value());
  auto fixed = reader.ReadDouble();
  if (!fixed.ok()) return fixed.status();
  statistics.config.fixed_smoothing = fixed.value();
  auto dpi_stages = reader.ReadU32();
  if (!dpi_stages.ok()) return dpi_stages.status();
  statistics.config.dpi_stages = static_cast<int>(dpi_stages.value());
  auto ash_shifts = reader.ReadU32();
  if (!ash_shifts.ok()) return ash_shifts.status();
  statistics.config.ash_shifts = static_cast<int>(ash_shifts.value());
  auto kernel = reader.ReadU32();
  if (!kernel.ok()) return kernel.status();
  if (kernel.value() > static_cast<uint32_t>(KernelType::kGaussian)) {
    return InvalidArgumentError("corrupt catalog entry: bad kernel type");
  }
  statistics.config.kernel = static_cast<KernelType>(kernel.value());
  auto boundary = reader.ReadU32();
  if (!boundary.ok()) return boundary.status();
  if (boundary.value() >
      static_cast<uint32_t>(BoundaryPolicy::kBoundaryKernel)) {
    return InvalidArgumentError("corrupt catalog entry: bad boundary policy");
  }
  statistics.config.boundary =
      static_cast<BoundaryPolicy>(boundary.value());

  auto sample = reader.ReadDoubleVector();
  if (!sample.ok()) return sample.status();
  statistics.sample = std::move(sample).value();
  return statistics;
}

Status StatisticsCatalog::AnalyzeColumn(const Dataset& column,
                                        const EstimatorConfig& config,
                                        size_t sample_size, Rng& rng) {
  if (sample_size == 0 || sample_size > column.size()) {
    return InvalidArgumentError("sample_size must be in [1, column size]");
  }
  ColumnStatistics statistics;
  statistics.column = column.name();
  statistics.domain = column.domain();
  statistics.num_records = column.size();
  statistics.config = config;
  statistics.sample =
      SampleWithoutReplacement(column.values(), sample_size, rng);
  return InstallStatistics(std::move(statistics));
}

Status StatisticsCatalog::InstallStatistics(ColumnStatistics statistics) {
  auto estimator = BuildEstimator(statistics.sample, statistics.domain,
                                  statistics.config);
  if (!estimator.ok()) return estimator.status();
  Entry entry;
  const std::string name = statistics.column;
  entry.statistics = std::move(statistics);
  entry.estimator = std::move(estimator).value();
  entries_.insert_or_assign(name, std::move(entry));
  return Status::Ok();
}

const StatisticsCatalog::Entry* StatisticsCatalog::Find(
    const std::string& column) const {
  const auto it = entries_.find(column);
  return it == entries_.end() ? nullptr : &it->second;
}

StatusOr<double> StatisticsCatalog::EstimateSelectivity(
    const std::string& column, const RangeQuery& query) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  return entry->estimator->EstimateSelectivity(query);
}

StatusOr<double> StatisticsCatalog::EstimateResultSize(
    const std::string& column, const RangeQuery& query) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  const double records = static_cast<double>(entry->statistics.num_records) +
                         static_cast<double>(entry->modifications);
  return entry->estimator->EstimateSelectivity(query) * records;
}

Status StatisticsCatalog::RecordModifications(const std::string& column,
                                              size_t count) {
  const auto it = entries_.find(column);
  if (it == entries_.end()) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  it->second.modifications += count;
  return Status::Ok();
}

StatusOr<double> StatisticsCatalog::Staleness(
    const std::string& column) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  if (entry->statistics.num_records == 0) return 1.0;
  return static_cast<double>(entry->modifications) /
         static_cast<double>(entry->statistics.num_records);
}

bool StatisticsCatalog::HasColumn(const std::string& column) const {
  return Find(column) != nullptr;
}

std::vector<std::string> StatisticsCatalog::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

StatusOr<const ColumnStatistics*> StatisticsCatalog::Statistics(
    const std::string& column) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  return &entry->statistics;
}

std::vector<uint8_t> StatisticsCatalog::SaveToBytes() const {
  ByteWriter writer;
  writer.WriteU64(entries_.size());
  for (const auto& [name, entry] : entries_) {
    entry.statistics.Serialize(writer);
  }
  return writer.TakeBytes();
}

StatusOr<std::unique_ptr<StatisticsCatalog>> StatisticsCatalog::LoadFromBytes(
    std::vector<uint8_t> bytes) {
  ByteReader reader(std::move(bytes));
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  auto catalog = std::make_unique<StatisticsCatalog>();
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto statistics = ColumnStatistics::Deserialize(reader);
    if (!statistics.ok()) return statistics.status();
    Status status = catalog->InstallStatistics(std::move(statistics).value());
    if (!status.ok()) return status;
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes after catalog payload");
  }
  return catalog;
}

// ---------------------------------------------------------------------------
// Catalog: the build-once/serve-many layer.
// ---------------------------------------------------------------------------

Catalog::Catalog(CatalogOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards) {
  if (!options_.snapshot_directory.empty()) {
    store_.emplace(options_.snapshot_directory);
  }
}

StatusOr<CatalogKey> Catalog::RegisterColumn(const std::string& relation,
                                             const std::string& attribute,
                                             const Domain& domain,
                                             std::span<const double> sample,
                                             const EstimatorConfig& config) {
  if (relation.empty() || attribute.empty()) {
    return InvalidArgumentError(
        "catalog registration needs non-empty relation and attribute names");
  }
  auto registration = std::make_shared<Registration>();
  registration->domain = domain;
  registration->sample.assign(sample.begin(), sample.end());
  registration->config = config;
  registration->key =
      CatalogKey{relation, attribute, FingerprintConfig(config)};
  const CatalogKey key = registration->key;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_[key] = std::move(registration);
    default_keys_.emplace(std::make_pair(relation, attribute), key);
  }
  return key;
}

std::shared_ptr<const Catalog::Registration> Catalog::FindRegistration(
    const CatalogKey& key) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = registry_.find(key);
  return it == registry_.end() ? nullptr : it->second;
}

StatusOr<std::unique_ptr<SelectivityEstimator>> Catalog::LoadSnapshotWithRetry(
    const CatalogKey& key) {
  std::unique_ptr<SelectivityEstimator> loaded;
  size_t attempts = 0;
  const Status status = RetryWithBackoff(
      options_.retry,
      [&]() -> Status {
        auto result = store_->Get(key);
        if (!result.ok()) return result.status();
        loaded = std::move(result).value();
        return Status::Ok();
      },
      &attempts);
  if (attempts > 1) {
    snapshot_retries_.fetch_add(attempts - 1, std::memory_order_relaxed);
  }
  if (!status.ok()) return status;
  return loaded;
}

Status Catalog::PutSnapshotWithRetry(const CatalogKey& key,
                                     const SelectivityEstimator& estimator) {
  size_t attempts = 0;
  const Status status = RetryWithBackoff(
      options_.retry, [&]() { return store_->Put(key, estimator); },
      &attempts);
  if (attempts > 1) {
    snapshot_retries_.fetch_add(attempts - 1, std::memory_order_relaxed);
  }
  return status;
}

StatusOr<std::shared_ptr<const SelectivityEstimator>> Catalog::GetEstimator(
    const CatalogKey& key) {
  const std::shared_ptr<const Registration> registration =
      FindRegistration(key);
  if (registration == nullptr) {
    return NotFoundError("no catalog registration for " + key.relation + "." +
                         key.attribute);
  }
  if (std::shared_ptr<const SelectivityEstimator> cached = cache_.Lookup(key);
      cached != nullptr) {
    return cached;
  }
  // Cold miss: prefer the disk snapshot; any damage (kDataLoss and
  // friends) is counted and degrades to a rebuild.
  if (store_.has_value()) {
    auto loaded = LoadSnapshotWithRetry(key);
    if (loaded.ok()) {
      std::shared_ptr<const SelectivityEstimator> estimator =
          std::move(loaded).value();
      snapshot_loads_.fetch_add(1, std::memory_order_relaxed);
      cache_.Insert(key, estimator);
      return estimator;
    }
    if (loaded.status().code() != StatusCode::kNotFound) {
      snapshot_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  SELEST_ASSIGN_OR_RETURN(
      std::unique_ptr<SelectivityEstimator> rebuilt,
      BuildEstimator(registration->sample, registration->domain,
                     registration->config));
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const SelectivityEstimator> estimator = std::move(rebuilt);
  if (store_.has_value()) {
    const Status written = PutSnapshotWithRetry(key, *estimator);
    if (written.ok()) {
      writebacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      snapshot_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  cache_.Insert(key, estimator);
  return estimator;
}

StatusOr<double> Catalog::Estimate(const CatalogKey& key,
                                   const RangeQuery& query) {
  SELEST_ASSIGN_OR_RETURN(
      const std::shared_ptr<const SelectivityEstimator> estimator,
      GetEstimator(key));
  estimates_.fetch_add(1, std::memory_order_relaxed);
  return estimator->EstimateSelectivity(query);
}

StatusOr<double> Catalog::Estimate(const std::string& relation,
                                   const std::string& attribute,
                                   const RangeQuery& query) {
  CatalogKey key;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = default_keys_.find(std::make_pair(relation, attribute));
    if (it == default_keys_.end()) {
      return NotFoundError("no catalog registration for " + relation + "." +
                           attribute);
    }
    key = it->second;
  }
  return Estimate(key, query);
}

Status Catalog::ObserveTrueSelectivity(const CatalogKey& key,
                                       const RangeQuery& query,
                                       double true_selectivity) {
  // One write-back at a time: two racing clone-swaps would each start from
  // the same served state and the later Insert would drop the earlier
  // observation.
  std::lock_guard<std::mutex> lock(feedback_mutex_);
  SELEST_ASSIGN_OR_RETURN(
      const std::shared_ptr<const SelectivityEstimator> current,
      GetEstimator(key));
  if (!current->SupportsFeedback()) {
    feedback_rejected_.fetch_add(1, std::memory_order_relaxed);
    return FailedPreconditionError("estimator \"" + current->name() +
                                   "\" for " + key.relation + "." +
                                   key.attribute +
                                   " does not accept query feedback");
  }
  // Clone through a snapshot round-trip: the resident instance may be mid-
  // estimate on another thread, so the observation lands on a private copy
  // that replaces it atomically in the cache (readers holding the old
  // shared_ptr finish against the previous state).
  SELEST_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          SnapshotEstimator(*current));
  SELEST_ASSIGN_OR_RETURN(std::unique_ptr<SelectivityEstimator> clone,
                          LoadEstimatorSnapshot(bytes));
  SELEST_RETURN_IF_ERROR(
      clone->ObserveTrueSelectivity(query, true_selectivity));
  std::shared_ptr<const SelectivityEstimator> updated = std::move(clone);
  cache_.Insert(key, updated);
  feedback_applied_.fetch_add(1, std::memory_order_relaxed);
  // Persist the adapted state so a cold miss (or a restart) serves the
  // learned estimator, not the build-time prior.
  if (store_.has_value()) {
    const Status written = PutSnapshotWithRetry(key, *updated);
    if (written.ok()) {
      writebacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      snapshot_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

Status Catalog::ObserveTrueSelectivity(const std::string& relation,
                                       const std::string& attribute,
                                       const RangeQuery& query,
                                       double true_selectivity) {
  CatalogKey key;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = default_keys_.find(std::make_pair(relation, attribute));
    if (it == default_keys_.end()) {
      return NotFoundError("no catalog registration for " + relation + "." +
                           attribute);
    }
    key = it->second;
  }
  return ObserveTrueSelectivity(key, query, true_selectivity);
}

Status Catalog::Warm(const CatalogKey& key) {
  SELEST_ASSIGN_OR_RETURN(
      const std::shared_ptr<const SelectivityEstimator> estimator,
      GetEstimator(key));
  // GetEstimator writes back only on rebuild; a cache hit for a key whose
  // snapshot was deleted out-of-band still needs persisting here.
  if (store_.has_value() && !store_->Contains(key)) {
    const Status written = PutSnapshotWithRetry(key, *estimator);
    if (written.ok()) {
      writebacks_.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    snapshot_errors_.fetch_add(1, std::memory_order_relaxed);
    return written;
  }
  return Status::Ok();
}

Status Catalog::WarmAll() {
  std::vector<CatalogKey> keys;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    keys.reserve(registry_.size());
    for (const auto& [key, registration] : registry_) keys.push_back(key);
  }
  Status first_error;
  for (const CatalogKey& key : keys) {
    const Status status = Warm(key);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

CatalogServeStats Catalog::serve_stats() const {
  CatalogServeStats stats;
  stats.estimates = estimates_.load(std::memory_order_relaxed);
  stats.snapshot_loads = snapshot_loads_.load(std::memory_order_relaxed);
  stats.snapshot_errors = snapshot_errors_.load(std::memory_order_relaxed);
  stats.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  stats.writebacks = writebacks_.load(std::memory_order_relaxed);
  stats.snapshot_retries =
      snapshot_retries_.load(std::memory_order_relaxed);
  stats.feedback_applied = feedback_applied_.load(std::memory_order_relaxed);
  stats.feedback_rejected =
      feedback_rejected_.load(std::memory_order_relaxed);
  return stats;
}

CacheStats Catalog::cache_stats() const { return cache_.stats(); }

size_t Catalog::num_registrations() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return registry_.size();
}

}  // namespace selest

