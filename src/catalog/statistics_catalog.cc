#include "src/catalog/statistics_catalog.h"

#include <cmath>

#include "src/sample/sampler.h"

namespace selest {
namespace {

constexpr uint32_t kFormatVersion = 1;

}  // namespace

void ColumnStatistics::Serialize(ByteWriter& writer) const {
  writer.WriteU32(kFormatVersion);
  writer.WriteString(column);
  writer.WriteDouble(domain.lo);
  writer.WriteDouble(domain.hi);
  writer.WriteU32(domain.discrete ? 1 : 0);
  writer.WriteU32(static_cast<uint32_t>(domain.bits));
  writer.WriteU64(num_records);
  writer.WriteU32(static_cast<uint32_t>(config.kind));
  writer.WriteU32(static_cast<uint32_t>(config.smoothing));
  writer.WriteDouble(config.fixed_smoothing);
  writer.WriteU32(static_cast<uint32_t>(config.dpi_stages));
  writer.WriteU32(static_cast<uint32_t>(config.ash_shifts));
  writer.WriteU32(static_cast<uint32_t>(config.kernel));
  writer.WriteU32(static_cast<uint32_t>(config.boundary));
  writer.WriteDoubleVector(sample);
}

StatusOr<ColumnStatistics> ColumnStatistics::Deserialize(ByteReader& reader) {
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kFormatVersion) {
    return InvalidArgumentError("unsupported catalog format version " +
                                std::to_string(version.value()));
  }
  ColumnStatistics statistics;
  auto column = reader.ReadString();
  if (!column.ok()) return column.status();
  statistics.column = std::move(column).value();

  auto lo = reader.ReadDouble();
  if (!lo.ok()) return lo.status();
  auto hi = reader.ReadDouble();
  if (!hi.ok()) return hi.status();
  auto discrete = reader.ReadU32();
  if (!discrete.ok()) return discrete.status();
  auto bits = reader.ReadU32();
  if (!bits.ok()) return bits.status();
  if (!(lo.value() < hi.value()) || !std::isfinite(lo.value()) ||
      !std::isfinite(hi.value())) {
    return InvalidArgumentError("corrupt catalog entry: bad domain");
  }
  statistics.domain.lo = lo.value();
  statistics.domain.hi = hi.value();
  statistics.domain.discrete = discrete.value() != 0;
  statistics.domain.bits = static_cast<int>(bits.value());

  auto num_records = reader.ReadU64();
  if (!num_records.ok()) return num_records.status();
  statistics.num_records = num_records.value();

  auto kind = reader.ReadU32();
  if (!kind.ok()) return kind.status();
  if (kind.value() > static_cast<uint32_t>(EstimatorKind::kWavelet)) {
    return InvalidArgumentError("corrupt catalog entry: bad estimator kind");
  }
  statistics.config.kind = static_cast<EstimatorKind>(kind.value());
  auto smoothing = reader.ReadU32();
  if (!smoothing.ok()) return smoothing.status();
  if (smoothing.value() > static_cast<uint32_t>(SmoothingRule::kFixed)) {
    return InvalidArgumentError("corrupt catalog entry: bad smoothing rule");
  }
  statistics.config.smoothing = static_cast<SmoothingRule>(smoothing.value());
  auto fixed = reader.ReadDouble();
  if (!fixed.ok()) return fixed.status();
  statistics.config.fixed_smoothing = fixed.value();
  auto dpi_stages = reader.ReadU32();
  if (!dpi_stages.ok()) return dpi_stages.status();
  statistics.config.dpi_stages = static_cast<int>(dpi_stages.value());
  auto ash_shifts = reader.ReadU32();
  if (!ash_shifts.ok()) return ash_shifts.status();
  statistics.config.ash_shifts = static_cast<int>(ash_shifts.value());
  auto kernel = reader.ReadU32();
  if (!kernel.ok()) return kernel.status();
  if (kernel.value() > static_cast<uint32_t>(KernelType::kGaussian)) {
    return InvalidArgumentError("corrupt catalog entry: bad kernel type");
  }
  statistics.config.kernel = static_cast<KernelType>(kernel.value());
  auto boundary = reader.ReadU32();
  if (!boundary.ok()) return boundary.status();
  if (boundary.value() >
      static_cast<uint32_t>(BoundaryPolicy::kBoundaryKernel)) {
    return InvalidArgumentError("corrupt catalog entry: bad boundary policy");
  }
  statistics.config.boundary =
      static_cast<BoundaryPolicy>(boundary.value());

  auto sample = reader.ReadDoubleVector();
  if (!sample.ok()) return sample.status();
  statistics.sample = std::move(sample).value();
  return statistics;
}

Status StatisticsCatalog::AnalyzeColumn(const Dataset& column,
                                        const EstimatorConfig& config,
                                        size_t sample_size, Rng& rng) {
  if (sample_size == 0 || sample_size > column.size()) {
    return InvalidArgumentError("sample_size must be in [1, column size]");
  }
  ColumnStatistics statistics;
  statistics.column = column.name();
  statistics.domain = column.domain();
  statistics.num_records = column.size();
  statistics.config = config;
  statistics.sample =
      SampleWithoutReplacement(column.values(), sample_size, rng);
  return InstallStatistics(std::move(statistics));
}

Status StatisticsCatalog::InstallStatistics(ColumnStatistics statistics) {
  auto estimator = BuildEstimator(statistics.sample, statistics.domain,
                                  statistics.config);
  if (!estimator.ok()) return estimator.status();
  Entry entry;
  const std::string name = statistics.column;
  entry.statistics = std::move(statistics);
  entry.estimator = std::move(estimator).value();
  entries_.insert_or_assign(name, std::move(entry));
  return Status::Ok();
}

const StatisticsCatalog::Entry* StatisticsCatalog::Find(
    const std::string& column) const {
  const auto it = entries_.find(column);
  return it == entries_.end() ? nullptr : &it->second;
}

StatusOr<double> StatisticsCatalog::EstimateSelectivity(
    const std::string& column, const RangeQuery& query) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  return entry->estimator->EstimateSelectivity(query);
}

StatusOr<double> StatisticsCatalog::EstimateResultSize(
    const std::string& column, const RangeQuery& query) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  const double records = static_cast<double>(entry->statistics.num_records) +
                         static_cast<double>(entry->modifications);
  return entry->estimator->EstimateSelectivity(query) * records;
}

Status StatisticsCatalog::RecordModifications(const std::string& column,
                                              size_t count) {
  const auto it = entries_.find(column);
  if (it == entries_.end()) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  it->second.modifications += count;
  return Status::Ok();
}

StatusOr<double> StatisticsCatalog::Staleness(
    const std::string& column) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  if (entry->statistics.num_records == 0) return 1.0;
  return static_cast<double>(entry->modifications) /
         static_cast<double>(entry->statistics.num_records);
}

bool StatisticsCatalog::HasColumn(const std::string& column) const {
  return Find(column) != nullptr;
}

std::vector<std::string> StatisticsCatalog::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

StatusOr<const ColumnStatistics*> StatisticsCatalog::Statistics(
    const std::string& column) const {
  const Entry* entry = Find(column);
  if (entry == nullptr) {
    return NotFoundError("no statistics for column '" + column + "'");
  }
  return &entry->statistics;
}

std::vector<uint8_t> StatisticsCatalog::SaveToBytes() const {
  ByteWriter writer;
  writer.WriteU64(entries_.size());
  for (const auto& [name, entry] : entries_) {
    entry.statistics.Serialize(writer);
  }
  return writer.TakeBytes();
}

StatusOr<std::unique_ptr<StatisticsCatalog>> StatisticsCatalog::LoadFromBytes(
    std::vector<uint8_t> bytes) {
  ByteReader reader(std::move(bytes));
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  auto catalog = std::make_unique<StatisticsCatalog>();
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto statistics = ColumnStatistics::Deserialize(reader);
    if (!statistics.ok()) return statistics.status();
    Status status = catalog->InstallStatistics(std::move(statistics).value());
    if (!status.ok()) return status;
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes after catalog payload");
  }
  return catalog;
}

}  // namespace selest
