#include "src/catalog/serving_cache.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace selest {

namespace {

// FNV-1a over a string, continuing from `hash`.
uint64_t MixString(uint64_t hash, const std::string& text) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= kPrime;
  }
  // A separator byte so ("ab", "c") and ("a", "bc") hash differently.
  hash ^= 0xFFu;
  hash *= kPrime;
  return hash;
}

}  // namespace

size_t CatalogKeyHash::operator()(const CatalogKey& key) const {
  constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  uint64_t hash = MixString(kOffsetBasis, key.relation);
  hash = MixString(hash, key.attribute);
  hash ^= key.fingerprint;
  hash *= 1099511628211ull;
  return static_cast<size_t>(hash);
}

ServingCache::ServingCache(size_t capacity, size_t num_shards)
    : capacity_(std::max<size_t>(capacity, 1)) {
  const size_t shards =
      std::clamp<size_t>(num_shards, 1, std::max<size_t>(capacity_ / 2, 1));
  per_shard_capacity_ = std::max<size_t>(capacity_ / shards, 1);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ServingCache::Shard& ServingCache::ShardFor(const CatalogKey& key) {
  return *shards_[CatalogKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const SelectivityEstimator> ServingCache::Lookup(
    const CatalogKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->estimator;
}

void ServingCache::Insert(
    const CatalogKey& key,
    std::shared_ptr<const SelectivityEstimator> estimator) {
  SELEST_CHECK(estimator != nullptr);
  const size_t bytes = estimator->StorageBytes();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    resident_bytes_.fetch_sub(it->second->estimator->StorageBytes(),
                              std::memory_order_relaxed);
    it->second->estimator = std::move(estimator);
    resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(estimator)});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  resident_entries_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    resident_bytes_.fetch_sub(victim.estimator->StorageBytes(),
                              std::memory_order_relaxed);
    resident_entries_.fetch_sub(1, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServingCache::Erase(const CatalogKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  resident_bytes_.fetch_sub(it->second->estimator->StorageBytes(),
                            std::memory_order_relaxed);
  resident_entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

CacheStats ServingCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.resident_entries = resident_entries_.load(std::memory_order_relaxed);
  stats.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace selest
