#include "src/catalog/snapshot_store.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "src/est/estimator_snapshot.h"
#include "src/util/serialize.h"

namespace selest {

namespace {

// Filesystem-safe rendering of a key component, kept readable for
// debugging. Sanitizing can alias ("u(20)" and "u_20_"), so PathFor also
// appends the key's full hash — the sanitized text is a label, the hash is
// the identity.
std::string Sanitize(const std::string& text) {
  std::string safe;
  safe.reserve(text.size());
  for (char c : text) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '-' || c == '.';
    safe.push_back(ok ? c : '_');
  }
  return safe;
}

std::string Hex(uint64_t value) {
  constexpr char kDigits[] = "0123456789abcdef";
  std::string text(16, '0');
  for (int i = 15; i >= 0; --i) {
    text[static_cast<size_t>(i)] = kDigits[value & 0xFu];
    value >>= 4;
  }
  return text;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string directory)
    : directory_(std::move(directory)) {
  // Reclaim orphaned temporaries: a crash between the tmp-write and the
  // rename (see WriteBytesToFile) leaves a `<name>.snapshot.tmpN` sibling
  // no reader ever opens. Swept only at construction — a live writer's
  // in-flight temporary is never older than the store using it.
  std::error_code ec;
  if (!std::filesystem::is_directory(directory_, ec)) return;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".snapshot.tmp") == std::string::npos) continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec) && !remove_ec) {
      ++swept_tmp_files_;
    }
  }
}

std::string SnapshotStore::LabelFor(const CatalogKey& key) {
  const uint64_t identity = CatalogKeyHash{}(key) ^ key.fingerprint;
  return Sanitize(key.relation) + "." + Sanitize(key.attribute) + "-" +
         Hex(identity);
}

std::string SnapshotStore::PathFor(const CatalogKey& key) const {
  return directory_ + "/" + LabelFor(key) + ".snapshot";
}

Status SnapshotStore::Put(const CatalogKey& key,
                          const SelectivityEstimator& estimator,
                          uint32_t* file_crc_out) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return InternalError("cannot create snapshot directory " + directory_ +
                         ": " + ec.message());
  }
  SELEST_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          SnapshotEstimator(estimator));
  SELEST_RETURN_IF_ERROR(WriteBytesToFile(PathFor(key), bytes));
  puts_.fetch_add(1, std::memory_order_relaxed);
  if (file_crc_out != nullptr) *file_crc_out = SnapshotContentCrc(bytes);
  return Status::Ok();
}

StatusOr<std::unique_ptr<SelectivityEstimator>> SnapshotStore::Get(
    const CatalogKey& key) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  SELEST_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          ReadBytesFromFile(PathFor(key)));
  return LoadEstimatorSnapshot(bytes);
}

bool SnapshotStore::Contains(const CatalogKey& key) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(key), ec);
}

Status SnapshotStore::Delete(const CatalogKey& key) {
  std::error_code ec;
  std::filesystem::remove(PathFor(key), ec);
  if (ec) {
    return InternalError("cannot delete snapshot " + PathFor(key) + ": " +
                         ec.message());
  }
  return Status::Ok();
}

}  // namespace selest
