#include "src/catalog/snapshot_store.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "src/est/estimator_snapshot.h"
#include "src/util/serialize.h"

namespace selest {

namespace {

// Filesystem-safe rendering of a key component, kept readable for
// debugging. Sanitizing can alias ("u(20)" and "u_20_"), so PathFor also
// appends the key's full hash — the sanitized text is a label, the hash is
// the identity.
std::string Sanitize(const std::string& text) {
  std::string safe;
  safe.reserve(text.size());
  for (char c : text) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '-' || c == '.';
    safe.push_back(ok ? c : '_');
  }
  return safe;
}

std::string Hex(uint64_t value) {
  constexpr char kDigits[] = "0123456789abcdef";
  std::string text(16, '0');
  for (int i = 15; i >= 0; --i) {
    text[static_cast<size_t>(i)] = kDigits[value & 0xFu];
    value >>= 4;
  }
  return text;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string SnapshotStore::PathFor(const CatalogKey& key) const {
  const uint64_t identity = CatalogKeyHash{}(key) ^ key.fingerprint;
  return directory_ + "/" + Sanitize(key.relation) + "." +
         Sanitize(key.attribute) + "-" + Hex(identity) + ".snapshot";
}

Status SnapshotStore::Put(const CatalogKey& key,
                          const SelectivityEstimator& estimator) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return InternalError("cannot create snapshot directory " + directory_ +
                         ": " + ec.message());
  }
  SELEST_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          SnapshotEstimator(estimator));
  SELEST_RETURN_IF_ERROR(WriteBytesToFile(PathFor(key), bytes));
  puts_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

StatusOr<std::unique_ptr<SelectivityEstimator>> SnapshotStore::Get(
    const CatalogKey& key) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  SELEST_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          ReadBytesFromFile(PathFor(key)));
  return LoadEstimatorSnapshot(bytes);
}

bool SnapshotStore::Contains(const CatalogKey& key) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(key), ec);
}

Status SnapshotStore::Delete(const CatalogKey& key) {
  std::error_code ec;
  std::filesystem::remove(PathFor(key), ec);
  if (ec) {
    return InternalError("cannot delete snapshot " + PathFor(key) + ": " +
                         ec.message());
  }
  return Status::Ok();
}

}  // namespace selest
