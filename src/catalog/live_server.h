// The live statistics server: concurrent serving + incremental ingest.
//
// The serving Catalog (statistics_catalog.h) is build-once/serve-many over
// a fixed sample; this layer is the ROADMAP's "millions of users" piece —
// rows keep arriving after the build and estimates must stay fresh without
// readers ever blocking on a rebuild. Per column it maintains
//
//   * a served *generation*: an immutable estimator published through an
//     atomic shared_ptr. Readers load the pointer, answer from that
//     generation, and are never torn across a refresh (RCU-style: the old
//     generation stays alive as long as any reader holds it);
//   * an ingest-side accumulator, private to the server and guarded by an
//     ingest mutex: a mergeable clone of the estimator that new rows fold
//     into without a full rebuild (MergeFrom/FoldRows, est/), a decaying
//     reservoir (sample/sampler.h) feeding full rebuilds of non-mergeable
//     estimators, and a progressive online estimator (online/) serving
//     interval estimates between generations;
//   * a staleness policy: refresh after `refresh_ingest_rows` folded rows
//     and/or when the serving generation is older than `ttl_ticks` by the
//     injected clock, executed inline or in the background on the shared
//     exec thread pool. A refresh that fails — an injected est/build or
//     server/refresh fault, a clone error — retries with capped backoff
//     (util/retry.h), then leaves the old generation serving and bumps an
//     error counter (graceful degradation, DESIGN.md §8);
//   * optionally a per-column write-ahead log (durability/wal.h): Ingest
//     appends and fsyncs the batch before folding it, so a crash loses
//     nothing that was acknowledged. RecoverColumn rebuilds a column from
//     its newest proven snapshot plus the WAL tail. Repeated WAL failures
//     walk the column's health from healthy → degraded → read-only
//     (ServerHealth).
//
// Generation lifecycle: DESIGN.md §10. Durability and the fsync-boundary
// contract: DESIGN.md §11.
#ifndef SELEST_CATALOG_LIVE_SERVER_H_
#define SELEST_CATALOG_LIVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/catalog/snapshot_store.h"
#include "src/data/column_source.h"
#include "src/data/domain.h"
#include "src/durability/recovery_manager.h"
#include "src/durability/wal.h"
#include "src/est/estimator_factory.h"
#include "src/exec/thread_pool.h"
#include "src/online/online_estimator.h"
#include "src/query/range_query.h"
#include "src/sample/sampler.h"
#include "src/util/retry.h"
#include "src/util/status.h"

namespace selest {

// Per-column (and server-wide) health. Transitions on the WAL write path:
// an append/sync failure degrades the column; `read_only_after_failures`
// consecutive failures latch it read-only (ingest rejected, serving
// continues from the last generation). A successful durable append heals
// kDegraded back to kHealthy; kReadOnly is sticky until RecoverColumn or
// ResetColumnHealth — the operator must decide the log is trustworthy
// again, the server must not flap on its own.
enum class ServerHealth { kHealthy = 0, kDegraded = 1, kReadOnly = 2 };
const char* ServerHealthName(ServerHealth health);

struct LiveServerOptions {
  // Capacity and recency bias of the per-column ingest reservoir (see
  // DecayingReservoir). Non-mergeable estimators rebuild from this
  // reservoir on refresh; keep it at least as large as the registration
  // sample when bit-stable refreshes of a quiet column matter.
  size_t reservoir_capacity = 2000;
  double reservoir_decay = 0.0;

  // Staleness policy. A refresh is triggered when `refresh_ingest_rows`
  // rows have been folded since the served build (0 disables), or when the
  // serving generation is older than `ttl_ticks` by `clock` (0 disables;
  // checked on ingest and serve). At most one refresh per column runs at a
  // time; triggers during a running refresh coalesce into it.
  size_t refresh_ingest_rows = 0;
  uint64_t ttl_ticks = 0;
  // Monotonic tick source; defaults to steady_clock nanoseconds. Tests
  // inject a fake clock to drive TTL deterministically.
  std::function<uint64_t()> clock;

  // Background refreshes run on `pool` (the shared default pool when
  // nullptr) so ingest latency stays flat; inline refreshes complete
  // before Ingest returns, which is what the deterministic tests use.
  bool background_refresh = true;
  ThreadPool* pool = nullptr;

  // When set, every published generation is written back as an estimator
  // snapshot (PR 5 envelope) under this directory, keyed by
  // (relation, attribute, FingerprintConfig).
  std::string snapshot_directory;

  // Retain every published generation for inspection (the concurrency
  // tests replay served answers against the exact generation that produced
  // them). Unbounded; leave off outside tests.
  bool keep_generation_history = false;

  // Seeds the per-column reservoirs.
  uint64_t seed = 1;

  // When set, every column keeps a write-ahead log under
  // `wal_directory/<label>.wal/` and Ingest appends (and by default
  // fsyncs) the batch before folding it — nothing a successful Ingest
  // acknowledged is lost by a crash. Empty disables durability entirely
  // (the pre-WAL in-memory behavior).
  std::string wal_directory;
  WalOptions wal;

  // Retry discipline for the transient-failure paths: refresh execution,
  // snapshot write-back, and recovery's snapshot load. Only kInternal /
  // kResourceExhausted retry; corruption and programmer errors fail fast
  // (util/retry.h).
  RetryOptions retry;

  // Consecutive WAL failures before the column latches read-only.
  size_t read_only_after_failures = 3;
};

// One published epoch of a column. Immutable after publication.
struct LiveGeneration {
  std::shared_ptr<const SelectivityEstimator> estimator;
  // 1 for the registration build, then +1 per successful refresh.
  uint64_t number = 0;
  uint64_t built_at_ticks = 0;
  // Rows folded into this generation (registration rows + ingested rows).
  uint64_t rows_at_build = 0;
  // True when the generation was produced by the merge/fold path (no
  // rebuild); false for registration builds and reservoir rebuilds.
  bool merged = false;
};

// A serve-path answer bound to the generation that produced it.
struct ServedEstimate {
  double value = 0.0;
  uint64_t generation = 0;
};

// Per-column counters. Read with relaxed atomics: exact once concurrent
// traffic has quiesced.
struct LiveColumnStats {
  uint64_t generation = 0;        // currently served generation number
  uint64_t serves = 0;            // Estimate() answers across generations
  uint64_t ingested_rows = 0;     // rows accepted by Ingest since register
  uint64_t rows_since_refresh = 0;
  uint64_t refreshes = 0;         // successful generation flips
  uint64_t refresh_errors = 0;    // failed refreshes (old generation kept)
  uint64_t merge_refreshes = 0;   // flips produced by the merge/fold path
  uint64_t rebuild_refreshes = 0; // flips rebuilt from the reservoir
  uint64_t ttl_refreshes = 0;         // refresh triggers by TTL
  uint64_t threshold_refreshes = 0;   // refresh triggers by ingest volume
  uint64_t writebacks = 0;        // generation snapshots persisted
  uint64_t writeback_errors = 0;  // snapshot writes that failed

  // Durability & health (all zero / kHealthy when the WAL is disabled).
  ServerHealth health = ServerHealth::kHealthy;
  uint64_t wal_appends = 0;        // batches made durable by Ingest
  uint64_t wal_append_errors = 0;  // batches rejected at the WAL
  uint64_t consecutive_wal_failures = 0;
  uint64_t wal_last_sequence = 0;  // newest durable WAL sequence
  uint64_t refresh_retries = 0;    // extra refresh attempts beyond the 1st
  uint64_t writeback_retries = 0;  // extra write-back attempts
  bool recovered = false;              // column came from RecoverColumn
  bool recovery_used_snapshot = false; // fast path (snapshot + tail replay)
  uint64_t recovered_quarantined_segments = 0;
  uint64_t recovered_truncated_bytes = 0;
};

class LiveStatisticsServer {
 public:
  explicit LiveStatisticsServer(LiveServerOptions options = {});

  // Drains in-flight background refreshes before tearing down.
  ~LiveStatisticsServer();

  LiveStatisticsServer(const LiveStatisticsServer&) = delete;
  LiveStatisticsServer& operator=(const LiveStatisticsServer&) = delete;

  // Registers (relation, attribute) and publishes generation 1, built from
  // `initial_rows` exactly as BuildEstimator would (so a quiet column
  // serves bit-identically to the passive catalog). Replaces any previous
  // registration of the same column.
  Status RegisterColumn(const std::string& relation,
                        const std::string& attribute, const Domain& domain,
                        const EstimatorConfig& config,
                        std::span<const double> initial_rows);

  // Rebuilds a column from its durable state (snapshot + WAL) after a
  // crash: opens the column's log (quarantining unreadable segments,
  // truncating a torn tail), replays it through the RecoveryManager, and
  // publishes a recovered generation. For mergeable estimators the
  // recovered accumulator — and hence the published generation — is
  // bit-identical to the pre-crash state covering every durably
  // acknowledged row. Requires `wal_directory`; kNotFound when the log
  // holds no registration record.
  Status RecoverColumn(const std::string& relation,
                       const std::string& attribute, const Domain& domain,
                       const EstimatorConfig& config);

  // Folds new rows into the column's ingest-side state: the mergeable
  // accumulator (exact or bounded-drift, per estimator type), the
  // reservoir, and the online estimator. Values are clamped to the
  // column's domain. Returns before any triggered background refresh
  // completes; the served generation is unchanged until the flip.
  Status Ingest(const std::string& relation, const std::string& attribute,
                std::span<const double> rows);

  // Ingest from a dataset file (text format, data/io.h); the number of
  // rows folded on success. Subject to the data/io/read-text fault point:
  // a failed load folds nothing and leaves serving untouched.
  StatusOr<size_t> IngestFromFile(const std::string& relation,
                                  const std::string& attribute,
                                  const std::string& path);

  // Ingest from a ColumnSource, one chunk per Ingest batch: the out-of-core
  // path unifying streamed columns (mmap files, synthetic generators) with
  // the same WAL/fold/refresh discipline as span ingest — a column too big
  // for memory streams through at chunk granularity, and each chunk is
  // durably acknowledged before the next is read. Returns rows folded. On
  // error, chunks already ingested stay ingested (same contract as calling
  // Ingest per batch).
  StatusOr<uint64_t> IngestFromSource(const std::string& relation,
                                      const std::string& attribute,
                                      ColumnSource& source);

  // Serve-path estimate from the current generation. Never blocks on a
  // refresh: the generation pointer is loaded atomically and the answer is
  // computed entirely from that generation.
  StatusOr<double> Estimate(const std::string& relation,
                            const std::string& attribute,
                            const RangeQuery& query);

  // Estimate plus the generation number that answered — the concurrency
  // suite asserts every served value is bit-identical to its generation's
  // estimator (never a torn mix of two generations).
  StatusOr<ServedEstimate> EstimateDetailed(const std::string& relation,
                                            const std::string& attribute,
                                            const RangeQuery& query);

  // Progressive interval estimate from the ingest-side online estimator:
  // covers rows newer than the served generation, at the cost of taking
  // the ingest mutex.
  StatusOr<IntervalEstimate> OnlineEstimate(const std::string& relation,
                                            const std::string& attribute,
                                            const RangeQuery& query);

  // Forces a synchronous refresh (merge/fold clone for mergeable
  // estimators, reservoir rebuild otherwise) and publishes the new
  // generation. On failure the old generation keeps serving and the error
  // is returned.
  Status Refresh(const std::string& relation, const std::string& attribute);

  // Blocks until every background refresh scheduled so far has finished.
  void WaitForRefreshes();

  // The estimator of the current generation (shared ownership: stays valid
  // across later flips).
  StatusOr<std::shared_ptr<const SelectivityEstimator>> CurrentEstimator(
      const std::string& relation, const std::string& attribute) const;

  // The current generation record.
  StatusOr<std::shared_ptr<const LiveGeneration>> CurrentGeneration(
      const std::string& relation, const std::string& attribute) const;

  // Every generation published so far, oldest first. Requires
  // options.keep_generation_history.
  StatusOr<std::vector<std::shared_ptr<const LiveGeneration>>>
  GenerationHistory(const std::string& relation,
                    const std::string& attribute) const;

  StatusOr<LiveColumnStats> ColumnStats(const std::string& relation,
                                        const std::string& attribute) const;

  bool HasColumn(const std::string& relation,
                 const std::string& attribute) const;
  size_t num_columns() const;
  // The durable write-back tier, or nullptr when disabled.
  const SnapshotStore* store() const {
    return store_.has_value() ? &*store_ : nullptr;
  }

  // Clears a column's read-only latch and failure streak back to healthy.
  // The operator's "the disk is fixed" lever; it does not touch the log.
  Status ResetColumnHealth(const std::string& relation,
                           const std::string& attribute);

  // Worst health across all registered columns (kHealthy when empty).
  ServerHealth Health() const;

  // Where a column's WAL segments live under `wal_root` — shared with the
  // chaos harness so it can reopen / damage the log out-of-process-style.
  static std::string WalDirectoryFor(const std::string& wal_root,
                                     const CatalogKey& key);

 private:
  struct Column;

  std::shared_ptr<Column> FindColumn(const std::string& relation,
                                     const std::string& attribute) const;
  uint64_t Now() const;
  // Starts a refresh unless one is already running (coalescing).
  // `trigger_counter` (may be null) is bumped only when this call actually
  // claims the refresh, so policy counters count refreshes started, not
  // every serve that noticed staleness. Returns the refresh status when
  // run inline, OK when scheduled or coalesced.
  Status MaybeTriggerRefresh(const std::shared_ptr<Column>& column,
                             std::atomic<uint64_t>* trigger_counter);
  // The refresh body: produce the next generation (with retry), flip,
  // write back.
  Status DoRefresh(const std::shared_ptr<Column>& column);
  // Atomically flips the column to `generation` and persists it (snapshot
  // write-back with retry, then a WAL snapshot mark covering
  // `covered_sequence`).
  void Publish(const std::shared_ptr<Column>& column,
               std::shared_ptr<const LiveGeneration> generation,
               uint64_t covered_sequence);
  void CheckStaleness(const std::shared_ptr<Column>& column);
  // Health transitions for a WAL write outcome.
  void NoteWalResult(const std::shared_ptr<Column>& column, bool ok);

  LiveServerOptions options_;
  std::optional<SnapshotStore> store_;

  mutable std::mutex registry_mutex_;
  std::map<std::pair<std::string, std::string>, std::shared_ptr<Column>>
      columns_;

  // Background refresh accounting for WaitForRefreshes / the destructor.
  mutable std::mutex refresh_mutex_;
  std::condition_variable refresh_cv_;
  size_t pending_refreshes_ = 0;
};

}  // namespace selest

#endif  // SELEST_CATALOG_LIVE_SERVER_H_
