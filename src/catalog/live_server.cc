#include "src/catalog/live_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/data/io.h"
#include "src/est/estimator_snapshot.h"
#include "src/exec/fault_injection.h"

namespace selest {

// Per-column state. The serving side is the atomic `current` pointer and
// the relaxed counters; everything the ingest side mutates lives behind
// `ingest_mutex`. A refresh holds the mutex only while capturing its
// inputs (a snapshot of the accumulator or a copy of the reservoir), never
// while building or flipping, so ingest stalls are bounded by a memcpy.
struct LiveStatisticsServer::Column {
  Column(std::string relation_name, std::string attribute_name,
         const Domain& column_domain, const EstimatorConfig& column_config,
         CatalogKey column_key, const LiveServerOptions& options)
      : relation(std::move(relation_name)),
        attribute(std::move(attribute_name)),
        domain(column_domain),
        config(column_config),
        key(std::move(column_key)),
        reservoir(options.reservoir_capacity, options.reservoir_decay,
                  options.seed ^ column_key.fingerprint),
        online(column_domain) {}

  const std::string relation;
  const std::string attribute;
  const Domain domain;
  const EstimatorConfig config;
  const CatalogKey key;

  // The served generation. Readers load once and answer entirely from the
  // loaded generation; the old one stays alive while they hold it.
  std::atomic<std::shared_ptr<const LiveGeneration>> current;

  std::mutex ingest_mutex;
  // Mergeable clone of the registration build; null when the estimator
  // kind does not support FoldRows (refreshes then rebuild from the
  // reservoir).
  std::unique_ptr<SelectivityEstimator> accumulator;
  DecayingReservoir reservoir;
  OnlineSelectivityEstimator online;
  uint64_t total_rows = 0;  // registration rows + accepted ingest rows

  // At most one refresh per column at a time; losers coalesce.
  std::atomic<bool> refresh_in_flight{false};

  std::atomic<uint64_t> serves{0};
  std::atomic<uint64_t> ingested_rows{0};
  std::atomic<uint64_t> rows_since_refresh{0};
  std::atomic<uint64_t> refreshes{0};
  std::atomic<uint64_t> refresh_errors{0};
  std::atomic<uint64_t> merge_refreshes{0};
  std::atomic<uint64_t> rebuild_refreshes{0};
  std::atomic<uint64_t> ttl_refreshes{0};
  std::atomic<uint64_t> threshold_refreshes{0};
  std::atomic<uint64_t> writebacks{0};
  std::atomic<uint64_t> writeback_errors{0};

  mutable std::mutex history_mutex;
  std::vector<std::shared_ptr<const LiveGeneration>> history;
};

LiveStatisticsServer::LiveStatisticsServer(LiveServerOptions options)
    : options_(std::move(options)) {
  if (!options_.snapshot_directory.empty()) {
    store_.emplace(options_.snapshot_directory);
  }
}

LiveStatisticsServer::~LiveStatisticsServer() { WaitForRefreshes(); }

uint64_t LiveStatisticsServer::Now() const {
  if (options_.clock) return options_.clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::shared_ptr<LiveStatisticsServer::Column> LiveStatisticsServer::FindColumn(
    const std::string& relation, const std::string& attribute) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = columns_.find(std::make_pair(relation, attribute));
  return it == columns_.end() ? nullptr : it->second;
}

Status LiveStatisticsServer::RegisterColumn(const std::string& relation,
                                            const std::string& attribute,
                                            const Domain& domain,
                                            const EstimatorConfig& config,
                                            std::span<const double> initial_rows) {
  if (relation.empty() || attribute.empty()) {
    return InvalidArgumentError(
        "live-server registration needs non-empty relation and attribute "
        "names");
  }
  SELEST_ASSIGN_OR_RETURN(
      std::unique_ptr<SelectivityEstimator> built,
      BuildEstimator(initial_rows, domain, config));
  auto column = std::make_shared<Column>(
      relation, attribute, domain, config,
      CatalogKey{relation, attribute, FingerprintConfig(config)}, options_);
  if (built->SupportsMerge()) {
    // A second deterministic build of the same inputs gives the private
    // mutable accumulator; the first stays immutable and gets served.
    SELEST_ASSIGN_OR_RETURN(column->accumulator,
                            BuildEstimator(initial_rows, domain, config));
  }
  column->reservoir.AddBatch(initial_rows);
  column->online.AddSamples(initial_rows);
  column->total_rows = initial_rows.size();

  auto generation = std::make_shared<LiveGeneration>();
  generation->estimator =
      std::shared_ptr<const SelectivityEstimator>(std::move(built));
  generation->number = 1;
  generation->built_at_ticks = Now();
  generation->rows_at_build = initial_rows.size();
  generation->merged = false;
  Publish(column, std::move(generation));

  std::lock_guard<std::mutex> lock(registry_mutex_);
  columns_.insert_or_assign(std::make_pair(relation, attribute),
                            std::move(column));
  return Status::Ok();
}

void LiveStatisticsServer::Publish(
    const std::shared_ptr<Column>& column,
    std::shared_ptr<const LiveGeneration> generation) {
  column->current.store(generation);
  if (options_.keep_generation_history) {
    std::lock_guard<std::mutex> lock(column->history_mutex);
    column->history.push_back(generation);
  }
  if (store_.has_value()) {
    const Status written = store_->Put(column->key, *generation->estimator);
    if (written.ok()) {
      column->writebacks.fetch_add(1, std::memory_order_relaxed);
    } else {
      column->writeback_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status LiveStatisticsServer::Ingest(const std::string& relation,
                                    const std::string& attribute,
                                    std::span<const double> rows) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  if (rows.empty()) return Status::Ok();
  std::vector<double> clamped(rows.begin(), rows.end());
  for (double& v : clamped) v = column->domain.Clamp(v);

  bool threshold_hit = false;
  {
    std::lock_guard<std::mutex> lock(column->ingest_mutex);
    if (column->accumulator != nullptr) {
      SELEST_RETURN_IF_ERROR(column->accumulator->FoldRows(clamped));
    }
    column->reservoir.AddBatch(clamped);
    column->online.AddSamples(clamped);
    column->total_rows += clamped.size();
    column->ingested_rows.fetch_add(clamped.size(),
                                    std::memory_order_relaxed);
    const uint64_t since = column->rows_since_refresh.fetch_add(
                               clamped.size(), std::memory_order_relaxed) +
                           clamped.size();
    threshold_hit = options_.refresh_ingest_rows > 0 &&
                    since >= options_.refresh_ingest_rows;
  }
  if (threshold_hit) {
    SELEST_RETURN_IF_ERROR(
        MaybeTriggerRefresh(column, &column->threshold_refreshes));
  }
  CheckStaleness(column);
  return Status::Ok();
}

StatusOr<size_t> LiveStatisticsServer::IngestFromFile(
    const std::string& relation, const std::string& attribute,
    const std::string& path) {
  SELEST_ASSIGN_OR_RETURN(const Dataset data, LoadDatasetText(path));
  SELEST_RETURN_IF_ERROR(Ingest(relation, attribute, data.values()));
  return data.size();
}

StatusOr<double> LiveStatisticsServer::Estimate(const std::string& relation,
                                                const std::string& attribute,
                                                const RangeQuery& query) {
  SELEST_ASSIGN_OR_RETURN(const ServedEstimate served,
                          EstimateDetailed(relation, attribute, query));
  return served.value;
}

StatusOr<ServedEstimate> LiveStatisticsServer::EstimateDetailed(
    const std::string& relation, const std::string& attribute,
    const RangeQuery& query) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  // One load; value and generation number come from the same epoch even if
  // a flip lands mid-call.
  const std::shared_ptr<const LiveGeneration> generation =
      column->current.load();
  ServedEstimate served;
  served.value = generation->estimator->EstimateSelectivity(query);
  served.generation = generation->number;
  column->serves.fetch_add(1, std::memory_order_relaxed);
  CheckStaleness(column);
  return served;
}

StatusOr<IntervalEstimate> LiveStatisticsServer::OnlineEstimate(
    const std::string& relation, const std::string& attribute,
    const RangeQuery& query) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  std::lock_guard<std::mutex> lock(column->ingest_mutex);
  return column->online.Estimate(query);
}

void LiveStatisticsServer::CheckStaleness(
    const std::shared_ptr<Column>& column) {
  if (options_.ttl_ticks == 0) return;
  const std::shared_ptr<const LiveGeneration> generation =
      column->current.load();
  if (Now() - generation->built_at_ticks < options_.ttl_ticks) return;
  // Fire-and-forget: a failed inline TTL refresh is already counted in
  // refresh_errors and must not fail the serve that noticed it.
  (void)MaybeTriggerRefresh(column, &column->ttl_refreshes);
}

Status LiveStatisticsServer::MaybeTriggerRefresh(
    const std::shared_ptr<Column>& column,
    std::atomic<uint64_t>* trigger_counter) {
  if (column->refresh_in_flight.exchange(true)) return Status::Ok();
  if (trigger_counter != nullptr) {
    trigger_counter->fetch_add(1, std::memory_order_relaxed);
  }
  if (!options_.background_refresh) {
    const Status status = DoRefresh(column);
    column->refresh_in_flight.store(false);
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    ++pending_refreshes_;
  }
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Default();
  pool->Schedule([this, column]() {
    (void)DoRefresh(column);
    column->refresh_in_flight.store(false);
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    --pending_refreshes_;
    refresh_cv_.notify_all();
  });
  return Status::Ok();
}

Status LiveStatisticsServer::Refresh(const std::string& relation,
                                     const std::string& attribute) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  // Wait out any in-flight refresh, then run ours inline: the caller asked
  // for a flip that reflects everything ingested before this call.
  while (column->refresh_in_flight.exchange(true)) std::this_thread::yield();
  const Status status = DoRefresh(column);
  column->refresh_in_flight.store(false);
  return status;
}

Status LiveStatisticsServer::DoRefresh(const std::shared_ptr<Column>& column) {
  const Status status = [&]() -> Status {
    SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointServerRefresh));
    bool merged = false;
    uint64_t rows_at_build = 0;
    uint64_t rows_folded = 0;
    std::unique_ptr<SelectivityEstimator> next;
    if (column->accumulator != nullptr) {
      // Merge path: serialize-clone the accumulator under the mutex, then
      // deserialize outside it. The clone answers bit-identically to the
      // accumulator at capture time (the snapshot round-trip contract).
      std::vector<uint8_t> bytes;
      {
        std::lock_guard<std::mutex> lock(column->ingest_mutex);
        SELEST_ASSIGN_OR_RETURN(bytes,
                                SnapshotEstimator(*column->accumulator));
        rows_at_build = column->total_rows;
        rows_folded =
            column->rows_since_refresh.load(std::memory_order_relaxed);
      }
      SELEST_ASSIGN_OR_RETURN(next, LoadEstimatorSnapshot(bytes));
      merged = true;
    } else {
      // Rebuild path: full build from the current reservoir contents
      // (honors the est/build fault point).
      std::vector<double> rows;
      {
        std::lock_guard<std::mutex> lock(column->ingest_mutex);
        const std::span<const double> view = column->reservoir.values();
        rows.assign(view.begin(), view.end());
        rows_at_build = column->total_rows;
        rows_folded =
            column->rows_since_refresh.load(std::memory_order_relaxed);
      }
      SELEST_ASSIGN_OR_RETURN(
          next, BuildEstimator(rows, column->domain, column->config));
    }
    auto generation = std::make_shared<LiveGeneration>();
    generation->estimator =
        std::shared_ptr<const SelectivityEstimator>(std::move(next));
    generation->number = column->current.load()->number + 1;
    generation->built_at_ticks = Now();
    generation->rows_at_build = rows_at_build;
    generation->merged = merged;
    Publish(column, std::move(generation));
    column->refreshes.fetch_add(1, std::memory_order_relaxed);
    if (merged) {
      column->merge_refreshes.fetch_add(1, std::memory_order_relaxed);
    } else {
      column->rebuild_refreshes.fetch_add(1, std::memory_order_relaxed);
    }
    // Rows folded after the capture still count toward the next refresh.
    column->rows_since_refresh.fetch_sub(rows_folded,
                                         std::memory_order_relaxed);
    return Status::Ok();
  }();
  if (!status.ok()) {
    column->refresh_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void LiveStatisticsServer::WaitForRefreshes() {
  std::unique_lock<std::mutex> lock(refresh_mutex_);
  refresh_cv_.wait(lock, [this]() { return pending_refreshes_ == 0; });
}

StatusOr<std::shared_ptr<const SelectivityEstimator>>
LiveStatisticsServer::CurrentEstimator(const std::string& relation,
                                       const std::string& attribute) const {
  SELEST_ASSIGN_OR_RETURN(const std::shared_ptr<const LiveGeneration> gen,
                          CurrentGeneration(relation, attribute));
  return gen->estimator;
}

StatusOr<std::shared_ptr<const LiveGeneration>>
LiveStatisticsServer::CurrentGeneration(const std::string& relation,
                                        const std::string& attribute) const {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  return column->current.load();
}

StatusOr<std::vector<std::shared_ptr<const LiveGeneration>>>
LiveStatisticsServer::GenerationHistory(const std::string& relation,
                                        const std::string& attribute) const {
  if (!options_.keep_generation_history) {
    return FailedPreconditionError(
        "generation history requires LiveServerOptions::"
        "keep_generation_history");
  }
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  std::lock_guard<std::mutex> lock(column->history_mutex);
  return column->history;
}

StatusOr<LiveColumnStats> LiveStatisticsServer::ColumnStats(
    const std::string& relation, const std::string& attribute) const {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  LiveColumnStats stats;
  stats.generation = column->current.load()->number;
  stats.serves = column->serves.load(std::memory_order_relaxed);
  stats.ingested_rows =
      column->ingested_rows.load(std::memory_order_relaxed);
  stats.rows_since_refresh =
      column->rows_since_refresh.load(std::memory_order_relaxed);
  stats.refreshes = column->refreshes.load(std::memory_order_relaxed);
  stats.refresh_errors =
      column->refresh_errors.load(std::memory_order_relaxed);
  stats.merge_refreshes =
      column->merge_refreshes.load(std::memory_order_relaxed);
  stats.rebuild_refreshes =
      column->rebuild_refreshes.load(std::memory_order_relaxed);
  stats.ttl_refreshes =
      column->ttl_refreshes.load(std::memory_order_relaxed);
  stats.threshold_refreshes =
      column->threshold_refreshes.load(std::memory_order_relaxed);
  stats.writebacks = column->writebacks.load(std::memory_order_relaxed);
  stats.writeback_errors =
      column->writeback_errors.load(std::memory_order_relaxed);
  return stats;
}

bool LiveStatisticsServer::HasColumn(const std::string& relation,
                                     const std::string& attribute) const {
  return FindColumn(relation, attribute) != nullptr;
}

size_t LiveStatisticsServer::num_columns() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return columns_.size();
}

}  // namespace selest
