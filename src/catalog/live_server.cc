#include "src/catalog/live_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/data/io.h"
#include "src/est/estimator_snapshot.h"
#include "src/exec/fault_injection.h"

namespace selest {

// Per-column state. The serving side is the atomic `current` pointer and
// the relaxed counters; everything the ingest side mutates lives behind
// `ingest_mutex`. A refresh holds the mutex only while capturing its
// inputs (a snapshot of the accumulator or a copy of the reservoir), never
// while building or flipping, so ingest stalls are bounded by a memcpy.
struct LiveStatisticsServer::Column {
  Column(std::string relation_name, std::string attribute_name,
         const Domain& column_domain, const EstimatorConfig& column_config,
         CatalogKey column_key, const LiveServerOptions& options)
      : relation(std::move(relation_name)),
        attribute(std::move(attribute_name)),
        domain(column_domain),
        config(column_config),
        key(std::move(column_key)),
        reservoir(options.reservoir_capacity, options.reservoir_decay,
                  options.seed ^ column_key.fingerprint),
        online(column_domain) {}

  const std::string relation;
  const std::string attribute;
  const Domain domain;
  const EstimatorConfig config;
  const CatalogKey key;

  // The served generation. Readers load once and answer entirely from the
  // loaded generation; the old one stays alive while they hold it.
  std::atomic<std::shared_ptr<const LiveGeneration>> current;

  std::mutex ingest_mutex;
  // Mergeable clone of the registration build; null when the estimator
  // kind does not support FoldRows (refreshes then rebuild from the
  // reservoir).
  std::unique_ptr<SelectivityEstimator> accumulator;
  DecayingReservoir reservoir;
  OnlineSelectivityEstimator online;
  uint64_t total_rows = 0;  // registration rows + accepted ingest rows
  // Durable ingest log; null when LiveServerOptions::wal_directory is
  // empty. Guarded by ingest_mutex like the rest of the ingest side.
  std::unique_ptr<WriteAheadLog> wal;

  // At most one refresh per column at a time; losers coalesce.
  std::atomic<bool> refresh_in_flight{false};

  std::atomic<ServerHealth> health{ServerHealth::kHealthy};
  std::atomic<uint64_t> consecutive_wal_failures{0};
  // TTL reference point. Re-anchored downward when the clock steps
  // backwards past it, so a non-monotonic clock neither fires a spurious
  // refresh (unsigned wrap) nor wedges the TTL forever.
  std::atomic<uint64_t> ttl_anchor_ticks{0};

  // Recovery provenance, written once by RecoverColumn before the column
  // becomes visible.
  bool recovered = false;
  bool recovery_used_snapshot = false;
  size_t recovered_quarantined_segments = 0;
  uint64_t recovered_truncated_bytes = 0;

  std::atomic<uint64_t> serves{0};
  std::atomic<uint64_t> ingested_rows{0};
  std::atomic<uint64_t> rows_since_refresh{0};
  std::atomic<uint64_t> refreshes{0};
  std::atomic<uint64_t> refresh_errors{0};
  std::atomic<uint64_t> merge_refreshes{0};
  std::atomic<uint64_t> rebuild_refreshes{0};
  std::atomic<uint64_t> ttl_refreshes{0};
  std::atomic<uint64_t> threshold_refreshes{0};
  std::atomic<uint64_t> writebacks{0};
  std::atomic<uint64_t> writeback_errors{0};
  std::atomic<uint64_t> wal_appends{0};
  std::atomic<uint64_t> wal_append_errors{0};
  std::atomic<uint64_t> refresh_retries{0};
  std::atomic<uint64_t> writeback_retries{0};

  mutable std::mutex history_mutex;
  std::vector<std::shared_ptr<const LiveGeneration>> history;
};

const char* ServerHealthName(ServerHealth health) {
  switch (health) {
    case ServerHealth::kHealthy:
      return "healthy";
    case ServerHealth::kDegraded:
      return "degraded";
    case ServerHealth::kReadOnly:
      return "read-only";
  }
  return "unknown";
}

std::string LiveStatisticsServer::WalDirectoryFor(const std::string& wal_root,
                                                  const CatalogKey& key) {
  return wal_root + "/" + SnapshotStore::LabelFor(key) + ".wal";
}

LiveStatisticsServer::LiveStatisticsServer(LiveServerOptions options)
    : options_(std::move(options)) {
  if (!options_.snapshot_directory.empty()) {
    store_.emplace(options_.snapshot_directory);
  }
}

LiveStatisticsServer::~LiveStatisticsServer() { WaitForRefreshes(); }

uint64_t LiveStatisticsServer::Now() const {
  if (options_.clock) return options_.clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::shared_ptr<LiveStatisticsServer::Column> LiveStatisticsServer::FindColumn(
    const std::string& relation, const std::string& attribute) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = columns_.find(std::make_pair(relation, attribute));
  return it == columns_.end() ? nullptr : it->second;
}

Status LiveStatisticsServer::RegisterColumn(const std::string& relation,
                                            const std::string& attribute,
                                            const Domain& domain,
                                            const EstimatorConfig& config,
                                            std::span<const double> initial_rows) {
  if (relation.empty() || attribute.empty()) {
    return InvalidArgumentError(
        "live-server registration needs non-empty relation and attribute "
        "names");
  }
  SELEST_ASSIGN_OR_RETURN(
      std::unique_ptr<SelectivityEstimator> built,
      BuildEstimator(initial_rows, domain, config));
  auto column = std::make_shared<Column>(
      relation, attribute, domain, config,
      CatalogKey{relation, attribute, FingerprintConfig(config)}, options_);
  if (built->SupportsMerge()) {
    // A second deterministic build of the same inputs gives the private
    // mutable accumulator; the first stays immutable and gets served.
    SELEST_ASSIGN_OR_RETURN(column->accumulator,
                            BuildEstimator(initial_rows, domain, config));
  }
  if (!options_.wal_directory.empty()) {
    // A fresh registration replaces the column's durable history: reset
    // the log and make the registration rows its first record. A column
    // that cannot log its baseline is not durable, so failure here fails
    // the registration rather than silently serving volatile state.
    SELEST_ASSIGN_OR_RETURN(
        column->wal,
        WriteAheadLog::Open(WalDirectoryFor(options_.wal_directory,
                                            column->key),
                            options_.wal, /*reset=*/true));
    SELEST_RETURN_IF_ERROR(column->wal->Append(
        WalRecordType::kRegister, EncodeRowBatch(initial_rows)));
    SELEST_RETURN_IF_ERROR(column->wal->Sync());
  }
  column->reservoir.AddBatch(initial_rows);
  column->online.AddSamples(initial_rows);
  column->total_rows = initial_rows.size();

  auto generation = std::make_shared<LiveGeneration>();
  generation->estimator =
      std::shared_ptr<const SelectivityEstimator>(std::move(built));
  generation->number = 1;
  generation->built_at_ticks = Now();
  generation->rows_at_build = initial_rows.size();
  generation->merged = false;
  const uint64_t covered =
      column->wal != nullptr ? column->wal->last_sequence() : 0;
  Publish(column, std::move(generation), covered);

  std::lock_guard<std::mutex> lock(registry_mutex_);
  columns_.insert_or_assign(std::make_pair(relation, attribute),
                            std::move(column));
  return Status::Ok();
}

Status LiveStatisticsServer::RecoverColumn(const std::string& relation,
                                           const std::string& attribute,
                                           const Domain& domain,
                                           const EstimatorConfig& config) {
  if (options_.wal_directory.empty()) {
    return FailedPreconditionError(
        "RecoverColumn requires LiveServerOptions::wal_directory");
  }
  if (relation.empty() || attribute.empty()) {
    return InvalidArgumentError(
        "live-server recovery needs non-empty relation and attribute "
        "names");
  }
  const CatalogKey key{relation, attribute, FingerprintConfig(config)};
  SELEST_ASSIGN_OR_RETURN(
      std::unique_ptr<WriteAheadLog> wal,
      WriteAheadLog::Open(WalDirectoryFor(options_.wal_directory, key),
                          options_.wal));
  const RecoveryManager manager(store(), RecoveryOptions{options_.retry});
  SELEST_ASSIGN_OR_RETURN(RecoveredColumn recovered,
                          manager.Recover(key, *wal, domain, config));

  auto column = std::make_shared<Column>(relation, attribute, domain,
                                         config, key, options_);
  // Replaying the batches in their original order through the identically
  // seeded reservoir reproduces the pre-crash reservoir bit-for-bit, so
  // non-mergeable rebuilds land on the same estimator too.
  column->reservoir.AddBatch(recovered.registration_rows);
  column->online.AddSamples(recovered.registration_rows);
  for (const std::vector<double>& batch : recovered.ingest_batches) {
    column->reservoir.AddBatch(batch);
    column->online.AddSamples(batch);
  }
  column->total_rows = recovered.total_rows;

  std::unique_ptr<SelectivityEstimator> serving;
  bool merged = false;
  if (recovered.accumulator != nullptr) {
    // Mergeable: serve a serialize-clone of the recovered accumulator —
    // bit-identical to the pre-crash fold state over every durable row.
    SELEST_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                            SnapshotEstimator(*recovered.accumulator));
    SELEST_ASSIGN_OR_RETURN(serving, LoadEstimatorSnapshot(bytes));
    column->accumulator = std::move(recovered.accumulator);
    merged = true;
  } else {
    const std::span<const double> view = column->reservoir.values();
    const std::vector<double> rows(view.begin(), view.end());
    SELEST_ASSIGN_OR_RETURN(serving, BuildEstimator(rows, domain, config));
  }
  column->wal = std::move(wal);
  column->recovered = true;
  column->recovery_used_snapshot = recovered.used_snapshot;
  column->recovered_quarantined_segments = recovered.quarantined_segments;
  column->recovered_truncated_bytes = recovered.truncated_bytes;

  auto generation = std::make_shared<LiveGeneration>();
  generation->estimator =
      std::shared_ptr<const SelectivityEstimator>(std::move(serving));
  generation->number = recovered.last_generation + 1;
  generation->built_at_ticks = Now();
  generation->rows_at_build = recovered.total_rows;
  generation->merged = merged;
  Publish(column, std::move(generation), recovered.last_sequence);

  std::lock_guard<std::mutex> lock(registry_mutex_);
  columns_.insert_or_assign(std::make_pair(relation, attribute),
                            std::move(column));
  return Status::Ok();
}

void LiveStatisticsServer::Publish(
    const std::shared_ptr<Column>& column,
    std::shared_ptr<const LiveGeneration> generation,
    uint64_t covered_sequence) {
  column->current.store(generation);
  column->ttl_anchor_ticks.store(generation->built_at_ticks,
                                 std::memory_order_relaxed);
  if (options_.keep_generation_history) {
    std::lock_guard<std::mutex> lock(column->history_mutex);
    column->history.push_back(generation);
  }
  if (!store_.has_value()) return;
  // Write-back with retry: a transient store failure must not cost the
  // generation its durable snapshot when the next attempt would succeed.
  uint32_t file_crc = 0;
  size_t attempts = 0;
  const Status written = RetryWithBackoff(
      options_.retry,
      [&]() { return store_->Put(column->key, *generation->estimator,
                                 &file_crc); },
      &attempts);
  if (attempts > 1) {
    column->writeback_retries.fetch_add(attempts - 1,
                                        std::memory_order_relaxed);
  }
  if (!written.ok()) {
    column->writeback_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  column->writebacks.fetch_add(1, std::memory_order_relaxed);
  if (column->wal != nullptr) {
    // Put-then-mark: the mark carries the file's CRC, so recovery only
    // trusts it when the file on disk is the one this mark describes. A
    // failed mark merely forfeits the snapshot fast path (full replay
    // still recovers everything).
    std::lock_guard<std::mutex> lock(column->ingest_mutex);
    const Status marked = [&]() -> Status {
      SELEST_RETURN_IF_ERROR(column->wal->Append(
          WalRecordType::kSnapshotMark,
          EncodeSnapshotMark(covered_sequence, generation->number,
                             file_crc)));
      return column->wal->Sync();
    }();
    if (!marked.ok()) {
      column->writeback_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status LiveStatisticsServer::Ingest(const std::string& relation,
                                    const std::string& attribute,
                                    std::span<const double> rows) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  if (rows.empty()) return Status::Ok();
  if (column->health.load(std::memory_order_relaxed) ==
      ServerHealth::kReadOnly) {
    return FailedPreconditionError(
        relation + "." + attribute +
        " is read-only after repeated WAL failures; serving continues "
        "from the last generation (ResetColumnHealth to re-enable "
        "ingest)");
  }
  std::vector<double> clamped(rows.begin(), rows.end());
  for (double& v : clamped) v = column->domain.Clamp(v);

  bool threshold_hit = false;
  {
    std::lock_guard<std::mutex> lock(column->ingest_mutex);
    if (column->wal != nullptr) {
      // WAL-first: the batch must be logged before any in-memory state
      // changes. On failure nothing was folded, so the caller can retry
      // the exact batch without double-counting. With sync_every_append
      // (default) the append is durable on return; in buffered mode it
      // stays pending until the group-commit Sync at the next refresh
      // boundary — the documented durability trade.
      const Status logged = column->wal->Append(WalRecordType::kIngest,
                                                EncodeRowBatch(clamped));
      NoteWalResult(column, logged.ok());
      SELEST_RETURN_IF_ERROR(logged);
    }
    if (column->accumulator != nullptr) {
      SELEST_RETURN_IF_ERROR(column->accumulator->FoldRows(clamped));
    }
    column->reservoir.AddBatch(clamped);
    column->online.AddSamples(clamped);
    column->total_rows += clamped.size();
    column->ingested_rows.fetch_add(clamped.size(),
                                    std::memory_order_relaxed);
    const uint64_t since = column->rows_since_refresh.fetch_add(
                               clamped.size(), std::memory_order_relaxed) +
                           clamped.size();
    threshold_hit = options_.refresh_ingest_rows > 0 &&
                    since >= options_.refresh_ingest_rows;
  }
  if (threshold_hit) {
    SELEST_RETURN_IF_ERROR(
        MaybeTriggerRefresh(column, &column->threshold_refreshes));
  }
  CheckStaleness(column);
  return Status::Ok();
}

StatusOr<size_t> LiveStatisticsServer::IngestFromFile(
    const std::string& relation, const std::string& attribute,
    const std::string& path) {
  SELEST_ASSIGN_OR_RETURN(const Dataset data, LoadDatasetText(path));
  SELEST_RETURN_IF_ERROR(Ingest(relation, attribute, data.values()));
  return data.size();
}

StatusOr<uint64_t> LiveStatisticsServer::IngestFromSource(
    const std::string& relation, const std::string& attribute,
    ColumnSource& source) {
  source.Reset();
  uint64_t rows = 0;
  for (std::span<const double> chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    SELEST_RETURN_IF_ERROR(Ingest(relation, attribute, chunk));
    rows += chunk.size();
  }
  return rows;
}

StatusOr<double> LiveStatisticsServer::Estimate(const std::string& relation,
                                                const std::string& attribute,
                                                const RangeQuery& query) {
  SELEST_ASSIGN_OR_RETURN(const ServedEstimate served,
                          EstimateDetailed(relation, attribute, query));
  return served.value;
}

StatusOr<ServedEstimate> LiveStatisticsServer::EstimateDetailed(
    const std::string& relation, const std::string& attribute,
    const RangeQuery& query) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  // One load; value and generation number come from the same epoch even if
  // a flip lands mid-call.
  const std::shared_ptr<const LiveGeneration> generation =
      column->current.load();
  ServedEstimate served;
  served.value = generation->estimator->EstimateSelectivity(query);
  served.generation = generation->number;
  column->serves.fetch_add(1, std::memory_order_relaxed);
  CheckStaleness(column);
  return served;
}

StatusOr<IntervalEstimate> LiveStatisticsServer::OnlineEstimate(
    const std::string& relation, const std::string& attribute,
    const RangeQuery& query) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  std::lock_guard<std::mutex> lock(column->ingest_mutex);
  return column->online.Estimate(query);
}

void LiveStatisticsServer::NoteWalResult(
    const std::shared_ptr<Column>& column, bool ok) {
  if (ok) {
    column->wal_appends.fetch_add(1, std::memory_order_relaxed);
    column->consecutive_wal_failures.store(0, std::memory_order_relaxed);
    // A durable append heals a degraded column; read-only stays latched
    // (this path is unreachable read-only anyway — Ingest gates first).
    ServerHealth expected = ServerHealth::kDegraded;
    column->health.compare_exchange_strong(expected, ServerHealth::kHealthy);
    return;
  }
  column->wal_append_errors.fetch_add(1, std::memory_order_relaxed);
  const uint64_t failures = column->consecutive_wal_failures.fetch_add(
                                1, std::memory_order_relaxed) +
                            1;
  const ServerHealth next = failures >= options_.read_only_after_failures
                                ? ServerHealth::kReadOnly
                                : ServerHealth::kDegraded;
  // Only walk downhill: a concurrent success must not be overwritten from
  // degraded back to read-only by a stale failure, and read-only never
  // self-clears.
  ServerHealth current = column->health.load(std::memory_order_relaxed);
  while (static_cast<int>(next) > static_cast<int>(current) &&
         !column->health.compare_exchange_weak(current, next)) {
  }
}

void LiveStatisticsServer::CheckStaleness(
    const std::shared_ptr<Column>& column) {
  if (options_.ttl_ticks == 0) return;
  const uint64_t now = Now();
  const uint64_t anchor =
      column->ttl_anchor_ticks.load(std::memory_order_relaxed);
  if (now < anchor) {
    // The clock stepped backwards past the anchor (an injected fake, NTP,
    // a suspend glitch). `now - anchor` would wrap to an enormous age and
    // fire spuriously; never re-anchoring would wedge the TTL until the
    // clock catches back up. Re-anchor at the new "now": the TTL restarts
    // from here and fires after a full honest interval.
    column->ttl_anchor_ticks.store(now, std::memory_order_relaxed);
    return;
  }
  if (now - anchor < options_.ttl_ticks) return;
  // Fire-and-forget: a failed inline TTL refresh is already counted in
  // refresh_errors and must not fail the serve that noticed it.
  (void)MaybeTriggerRefresh(column, &column->ttl_refreshes);
}

Status LiveStatisticsServer::MaybeTriggerRefresh(
    const std::shared_ptr<Column>& column,
    std::atomic<uint64_t>* trigger_counter) {
  if (column->refresh_in_flight.exchange(true)) return Status::Ok();
  if (trigger_counter != nullptr) {
    trigger_counter->fetch_add(1, std::memory_order_relaxed);
  }
  if (!options_.background_refresh) {
    const Status status = DoRefresh(column);
    column->refresh_in_flight.store(false);
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    ++pending_refreshes_;
  }
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Default();
  pool->Schedule([this, column]() {
    (void)DoRefresh(column);
    column->refresh_in_flight.store(false);
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    --pending_refreshes_;
    refresh_cv_.notify_all();
  });
  return Status::Ok();
}

Status LiveStatisticsServer::Refresh(const std::string& relation,
                                     const std::string& attribute) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  // Wait out any in-flight refresh, then run ours inline: the caller asked
  // for a flip that reflects everything ingested before this call.
  while (column->refresh_in_flight.exchange(true)) std::this_thread::yield();
  const Status status = DoRefresh(column);
  column->refresh_in_flight.store(false);
  return status;
}

Status LiveStatisticsServer::DoRefresh(const std::shared_ptr<Column>& column) {
  const auto body = [&]() -> Status {
    SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointServerRefresh));
    bool merged = false;
    uint64_t rows_at_build = 0;
    uint64_t rows_folded = 0;
    uint64_t covered_sequence = 0;
    std::unique_ptr<SelectivityEstimator> next;
    if (column->accumulator != nullptr) {
      // Merge path: serialize-clone the accumulator under the mutex, then
      // deserialize outside it. The clone answers bit-identically to the
      // accumulator at capture time (the snapshot round-trip contract).
      std::vector<uint8_t> bytes;
      {
        std::lock_guard<std::mutex> lock(column->ingest_mutex);
        SELEST_ASSIGN_OR_RETURN(bytes,
                                SnapshotEstimator(*column->accumulator));
        rows_at_build = column->total_rows;
        rows_folded =
            column->rows_since_refresh.load(std::memory_order_relaxed);
        if (column->wal != nullptr) {
          // Group commit: flush any buffered appends so every row folded
          // into the captured accumulator is durable at or below the
          // covered bound. A failed Sync drops its pending records from
          // the log, but the snapshot written below still preserves those
          // rows, so the lower covered bound stays safe.
          (void)column->wal->Sync();
          covered_sequence = column->wal->durable_sequence();
        }
      }
      SELEST_ASSIGN_OR_RETURN(next, LoadEstimatorSnapshot(bytes));
      merged = true;
    } else {
      // Rebuild path: full build from the current reservoir contents
      // (honors the est/build fault point).
      std::vector<double> rows;
      {
        std::lock_guard<std::mutex> lock(column->ingest_mutex);
        const std::span<const double> view = column->reservoir.values();
        rows.assign(view.begin(), view.end());
        rows_at_build = column->total_rows;
        rows_folded =
            column->rows_since_refresh.load(std::memory_order_relaxed);
        if (column->wal != nullptr) {
          (void)column->wal->Sync();  // group-commit boundary, as above
          covered_sequence = column->wal->durable_sequence();
        }
      }
      SELEST_ASSIGN_OR_RETURN(
          next, BuildEstimator(rows, column->domain, column->config));
    }
    auto generation = std::make_shared<LiveGeneration>();
    generation->estimator =
        std::shared_ptr<const SelectivityEstimator>(std::move(next));
    generation->number = column->current.load()->number + 1;
    generation->built_at_ticks = Now();
    generation->rows_at_build = rows_at_build;
    generation->merged = merged;
    Publish(column, std::move(generation), covered_sequence);
    column->refreshes.fetch_add(1, std::memory_order_relaxed);
    if (merged) {
      column->merge_refreshes.fetch_add(1, std::memory_order_relaxed);
    } else {
      column->rebuild_refreshes.fetch_add(1, std::memory_order_relaxed);
    }
    // Rows folded after the capture still count toward the next refresh.
    column->rows_since_refresh.fetch_sub(rows_folded,
                                         std::memory_order_relaxed);
    return Status::Ok();
  };
  // Transient refresh failures (an injected fault, a racing resource
  // error) retry with backoff instead of instantly parking the column on
  // a stale generation until the next trigger.
  size_t attempts = 0;
  const Status status = RetryWithBackoff(options_.retry, body, &attempts);
  if (attempts > 1) {
    column->refresh_retries.fetch_add(attempts - 1,
                                      std::memory_order_relaxed);
  }
  if (!status.ok()) {
    column->refresh_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void LiveStatisticsServer::WaitForRefreshes() {
  std::unique_lock<std::mutex> lock(refresh_mutex_);
  refresh_cv_.wait(lock, [this]() { return pending_refreshes_ == 0; });
}

StatusOr<std::shared_ptr<const SelectivityEstimator>>
LiveStatisticsServer::CurrentEstimator(const std::string& relation,
                                       const std::string& attribute) const {
  SELEST_ASSIGN_OR_RETURN(const std::shared_ptr<const LiveGeneration> gen,
                          CurrentGeneration(relation, attribute));
  return gen->estimator;
}

StatusOr<std::shared_ptr<const LiveGeneration>>
LiveStatisticsServer::CurrentGeneration(const std::string& relation,
                                        const std::string& attribute) const {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  return column->current.load();
}

StatusOr<std::vector<std::shared_ptr<const LiveGeneration>>>
LiveStatisticsServer::GenerationHistory(const std::string& relation,
                                        const std::string& attribute) const {
  if (!options_.keep_generation_history) {
    return FailedPreconditionError(
        "generation history requires LiveServerOptions::"
        "keep_generation_history");
  }
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  std::lock_guard<std::mutex> lock(column->history_mutex);
  return column->history;
}

StatusOr<LiveColumnStats> LiveStatisticsServer::ColumnStats(
    const std::string& relation, const std::string& attribute) const {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  LiveColumnStats stats;
  stats.generation = column->current.load()->number;
  stats.serves = column->serves.load(std::memory_order_relaxed);
  stats.ingested_rows =
      column->ingested_rows.load(std::memory_order_relaxed);
  stats.rows_since_refresh =
      column->rows_since_refresh.load(std::memory_order_relaxed);
  stats.refreshes = column->refreshes.load(std::memory_order_relaxed);
  stats.refresh_errors =
      column->refresh_errors.load(std::memory_order_relaxed);
  stats.merge_refreshes =
      column->merge_refreshes.load(std::memory_order_relaxed);
  stats.rebuild_refreshes =
      column->rebuild_refreshes.load(std::memory_order_relaxed);
  stats.ttl_refreshes =
      column->ttl_refreshes.load(std::memory_order_relaxed);
  stats.threshold_refreshes =
      column->threshold_refreshes.load(std::memory_order_relaxed);
  stats.writebacks = column->writebacks.load(std::memory_order_relaxed);
  stats.writeback_errors =
      column->writeback_errors.load(std::memory_order_relaxed);
  stats.health = column->health.load(std::memory_order_relaxed);
  stats.wal_appends = column->wal_appends.load(std::memory_order_relaxed);
  stats.wal_append_errors =
      column->wal_append_errors.load(std::memory_order_relaxed);
  stats.consecutive_wal_failures =
      column->consecutive_wal_failures.load(std::memory_order_relaxed);
  stats.refresh_retries =
      column->refresh_retries.load(std::memory_order_relaxed);
  stats.writeback_retries =
      column->writeback_retries.load(std::memory_order_relaxed);
  stats.recovered = column->recovered;
  stats.recovery_used_snapshot = column->recovery_used_snapshot;
  stats.recovered_quarantined_segments =
      column->recovered_quarantined_segments;
  stats.recovered_truncated_bytes = column->recovered_truncated_bytes;
  if (column->wal != nullptr) {
    std::lock_guard<std::mutex> ingest_lock(column->ingest_mutex);
    stats.wal_last_sequence = column->wal->durable_sequence();
  }
  return stats;
}

Status LiveStatisticsServer::ResetColumnHealth(const std::string& relation,
                                               const std::string& attribute) {
  const std::shared_ptr<Column> column = FindColumn(relation, attribute);
  if (column == nullptr) {
    return NotFoundError("no live registration for " + relation + "." +
                         attribute);
  }
  column->consecutive_wal_failures.store(0, std::memory_order_relaxed);
  column->health.store(ServerHealth::kHealthy, std::memory_order_relaxed);
  return Status::Ok();
}

ServerHealth LiveStatisticsServer::Health() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  ServerHealth worst = ServerHealth::kHealthy;
  for (const auto& [name, column] : columns_) {
    const ServerHealth health =
        column->health.load(std::memory_order_relaxed);
    if (static_cast<int>(health) > static_cast<int>(worst)) worst = health;
  }
  return worst;
}

bool LiveStatisticsServer::HasColumn(const std::string& relation,
                                     const std::string& attribute) const {
  return FindColumn(relation, attribute) != nullptr;
}

size_t LiveStatisticsServer::num_columns() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return columns_.size();
}

}  // namespace selest
