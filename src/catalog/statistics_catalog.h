// A statistics catalog: the system-level home of selectivity estimators.
//
// Database systems keep per-column statistics in a catalog that the
// optimizer consults; this module provides that layer for selest. A
// catalog entry stores what a system would persist — the column's domain,
// the drawn sample and the estimator configuration — and rebuilds the
// estimator deterministically from them. Entries serialize to bytes for
// persistence, track staleness, and can be refreshed from the live column.
#ifndef SELEST_CATALOG_STATISTICS_CATALOG_H_
#define SELEST_CATALOG_STATISTICS_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/catalog/serving_cache.h"
#include "src/catalog/snapshot_store.h"
#include "src/data/dataset.h"
#include "src/est/estimator_factory.h"
#include "src/query/range_query.h"
#include "src/util/random.h"
#include "src/util/retry.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace selest {

// Persisted statistics of one column.
struct ColumnStatistics {
  std::string column;
  Domain domain;
  size_t num_records = 0;  // records in the relation when stats were built
  EstimatorConfig config;
  std::vector<double> sample;

  // Encodes/decodes the persisted form (versioned).
  void Serialize(ByteWriter& writer) const;
  static StatusOr<ColumnStatistics> Deserialize(ByteReader& reader);
};

class StatisticsCatalog {
 public:
  StatisticsCatalog() = default;

  // Catalogs are registries with identity; moving them around invites
  // dangling references from optimizers.
  StatisticsCatalog(const StatisticsCatalog&) = delete;
  StatisticsCatalog& operator=(const StatisticsCatalog&) = delete;

  // Draws a sample of `sample_size` records from `column` and builds the
  // configured estimator. Replaces any previous statistics for the column.
  Status AnalyzeColumn(const Dataset& column, const EstimatorConfig& config,
                       size_t sample_size, Rng& rng);

  // Installs externally produced statistics (e.g. loaded ones) and builds
  // the estimator.
  Status InstallStatistics(ColumnStatistics statistics);

  // Estimated selectivity of a range predicate on a cataloged column.
  StatusOr<double> EstimateSelectivity(const std::string& column,
                                       const RangeQuery& query) const;

  // Estimated result size, scaled by the record count seen at analyze time
  // plus any modifications reported since.
  StatusOr<double> EstimateResultSize(const std::string& column,
                                      const RangeQuery& query) const;

  // Reports records inserted/deleted since the last analyze; drives
  // staleness.
  Status RecordModifications(const std::string& column, size_t count);

  // Modified-fraction since the last analyze (0 when fresh). Typical
  // systems re-analyze beyond a threshold like 0.2.
  StatusOr<double> Staleness(const std::string& column) const;

  bool HasColumn(const std::string& column) const;
  std::vector<std::string> ColumnNames() const;
  size_t size() const { return entries_.size(); }

  // The persisted statistics of a column (for inspection/tests).
  StatusOr<const ColumnStatistics*> Statistics(const std::string& column) const;

  // Serializes every entry; LoadFromBytes rebuilds a full catalog.
  std::vector<uint8_t> SaveToBytes() const;
  static StatusOr<std::unique_ptr<StatisticsCatalog>> LoadFromBytes(
      std::vector<uint8_t> bytes);

 private:
  struct Entry {
    ColumnStatistics statistics;
    std::unique_ptr<SelectivityEstimator> estimator;
    size_t modifications = 0;
  };

  const Entry* Find(const std::string& column) const;

  std::map<std::string, Entry> entries_;
};

// ---------------------------------------------------------------------------
// The serving catalog: build-once/serve-many (DESIGN.md §9).
//
// StatisticsCatalog above rebuilds estimators from raw statistics on every
// load; Catalog instead persists *built* estimators as snapshots
// (est/estimator_snapshot.h) and serves estimates through a sharded LRU of
// deserialized instances. The serve path per key is
//
//   cache hit                        → estimate directly;
//   cache miss, valid disk snapshot  → deserialize, cache, estimate;
//   cache miss, missing/corrupt file → rebuild from the registered sample,
//                                      write the snapshot back, cache.
//
// A corrupt snapshot therefore degrades to a rebuild and a counter bump —
// never an error on the serve path, matching the PR 2 degradation
// philosophy. All serve-path methods are safe for concurrent callers.
// ---------------------------------------------------------------------------

struct CatalogOptions {
  // Directory for persisted snapshots; empty disables the durable tier
  // (cold misses always rebuild and nothing is written back).
  std::string snapshot_directory;
  // Entry budget of the in-memory estimator cache.
  size_t cache_capacity = 64;
  size_t cache_shards = 8;
  // Retry discipline for the durable tier (snapshot load and write-back).
  // Transient failures — a racing rename, an injected store fault — retry
  // with capped backoff instead of failing the serve once and keeping a
  // stale or missing snapshot; corruption (kDataLoss and friends) still
  // fails fast into the rebuild path (util/retry.h).
  RetryOptions retry;
};

// Serve-path counters. Read with relaxed atomics: exact once concurrent
// traffic has quiesced.
struct CatalogServeStats {
  uint64_t estimates = 0;        // Estimate() calls answered
  uint64_t snapshot_loads = 0;   // cold misses served from a disk snapshot
  uint64_t snapshot_errors = 0;  // snapshots rejected (corrupt/unwritable)
  uint64_t rebuilds = 0;         // cold misses rebuilt from the sample
  uint64_t writebacks = 0;       // snapshots persisted after a rebuild
  uint64_t snapshot_retries = 0; // extra store attempts beyond the first
  uint64_t feedback_applied = 0;  // observations folded into a served column
  uint64_t feedback_rejected = 0; // feedback to a non-query-driven estimator
};

class Catalog {
 public:
  explicit Catalog(CatalogOptions options = {});

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers a column under (relation, attribute) with the sample the
  // estimator builds from; returns the serving key, whose fingerprint
  // component is FingerprintConfig(config). Registering several configs
  // for one column yields distinct keys; the first registration becomes
  // the column's default for the (relation, attribute) Estimate overload.
  StatusOr<CatalogKey> RegisterColumn(const std::string& relation,
                                      const std::string& attribute,
                                      const Domain& domain,
                                      std::span<const double> sample,
                                      const EstimatorConfig& config);

  // Resolves the key through cache → snapshot → rebuild. The returned
  // estimator stays valid after eviction (shared ownership).
  StatusOr<std::shared_ptr<const SelectivityEstimator>> GetEstimator(
      const CatalogKey& key);

  // Serve-path estimate for a registered key.
  StatusOr<double> Estimate(const CatalogKey& key, const RangeQuery& query);

  // Serve-path estimate via the column's default config.
  StatusOr<double> Estimate(const std::string& relation,
                            const std::string& attribute,
                            const RangeQuery& query);

  // Feedback write-back (DESIGN.md §14): folds the true selectivity of an
  // executed query back into the column's served estimator. The resident
  // estimator is never mutated in place — readers may be serving it
  // concurrently — instead it is cloned through a snapshot round-trip, the
  // clone observes the feedback, and the cache entry is swapped to the
  // clone (and re-persisted when the durable tier is enabled), RCU-style.
  // kFailedPrecondition when the key's estimator is not query-driven.
  // Concurrent write-backs are serialized per catalog so no observation is
  // lost to a racing clone-swap.
  Status ObserveTrueSelectivity(const CatalogKey& key, const RangeQuery& query,
                                double true_selectivity);

  // Write-back via the column's default config.
  Status ObserveTrueSelectivity(const std::string& relation,
                                const std::string& attribute,
                                const RangeQuery& query,
                                double true_selectivity);

  // Ensures the key is resident in cache and, when the durable tier is
  // enabled, persisted on disk — the "build once" half of the contract.
  Status Warm(const CatalogKey& key);

  // Warms every registration; returns the first failure (after attempting
  // all of them).
  Status WarmAll();

  CatalogServeStats serve_stats() const;
  CacheStats cache_stats() const;
  // The durable tier, or nullptr when snapshots are disabled.
  const SnapshotStore* store() const {
    return store_.has_value() ? &*store_ : nullptr;
  }
  size_t num_registrations() const;

 private:
  struct Registration {
    Domain domain;
    std::vector<double> sample;
    EstimatorConfig config;
    CatalogKey key;
  };

  std::shared_ptr<const Registration> FindRegistration(
      const CatalogKey& key) const;

  CatalogOptions options_;
  std::optional<SnapshotStore> store_;
  ServingCache cache_;

  mutable std::mutex registry_mutex_;
  std::unordered_map<CatalogKey, std::shared_ptr<const Registration>,
                     CatalogKeyHash>
      registry_;
  // First-registered key per column, for the (relation, attribute) serve
  // overload.
  std::map<std::pair<std::string, std::string>, CatalogKey> default_keys_;

  mutable std::atomic<uint64_t> estimates_{0};
  mutable std::atomic<uint64_t> snapshot_loads_{0};
  mutable std::atomic<uint64_t> snapshot_errors_{0};
  mutable std::atomic<uint64_t> rebuilds_{0};
  mutable std::atomic<uint64_t> writebacks_{0};
  mutable std::atomic<uint64_t> snapshot_retries_{0};
  mutable std::atomic<uint64_t> feedback_applied_{0};
  mutable std::atomic<uint64_t> feedback_rejected_{0};

  // Serializes feedback write-backs (clone → observe → swap) so concurrent
  // observations compose instead of overwriting each other's clones.
  std::mutex feedback_mutex_;

  // store_->Get / store_->Put under the configured retry policy, counting
  // extra attempts into snapshot_retries_.
  StatusOr<std::unique_ptr<SelectivityEstimator>> LoadSnapshotWithRetry(
      const CatalogKey& key);
  Status PutSnapshotWithRetry(const CatalogKey& key,
                              const SelectivityEstimator& estimator);
};

}  // namespace selest

#endif  // SELEST_CATALOG_STATISTICS_CATALOG_H_
