// A statistics catalog: the system-level home of selectivity estimators.
//
// Database systems keep per-column statistics in a catalog that the
// optimizer consults; this module provides that layer for selest. A
// catalog entry stores what a system would persist — the column's domain,
// the drawn sample and the estimator configuration — and rebuilds the
// estimator deterministically from them. Entries serialize to bytes for
// persistence, track staleness, and can be refreshed from the live column.
#ifndef SELEST_CATALOG_STATISTICS_CATALOG_H_
#define SELEST_CATALOG_STATISTICS_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/est/estimator_factory.h"
#include "src/query/range_query.h"
#include "src/util/random.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace selest {

// Persisted statistics of one column.
struct ColumnStatistics {
  std::string column;
  Domain domain;
  size_t num_records = 0;  // records in the relation when stats were built
  EstimatorConfig config;
  std::vector<double> sample;

  // Encodes/decodes the persisted form (versioned).
  void Serialize(ByteWriter& writer) const;
  static StatusOr<ColumnStatistics> Deserialize(ByteReader& reader);
};

class StatisticsCatalog {
 public:
  StatisticsCatalog() = default;

  // Catalogs are registries with identity; moving them around invites
  // dangling references from optimizers.
  StatisticsCatalog(const StatisticsCatalog&) = delete;
  StatisticsCatalog& operator=(const StatisticsCatalog&) = delete;

  // Draws a sample of `sample_size` records from `column` and builds the
  // configured estimator. Replaces any previous statistics for the column.
  Status AnalyzeColumn(const Dataset& column, const EstimatorConfig& config,
                       size_t sample_size, Rng& rng);

  // Installs externally produced statistics (e.g. loaded ones) and builds
  // the estimator.
  Status InstallStatistics(ColumnStatistics statistics);

  // Estimated selectivity of a range predicate on a cataloged column.
  StatusOr<double> EstimateSelectivity(const std::string& column,
                                       const RangeQuery& query) const;

  // Estimated result size, scaled by the record count seen at analyze time
  // plus any modifications reported since.
  StatusOr<double> EstimateResultSize(const std::string& column,
                                      const RangeQuery& query) const;

  // Reports records inserted/deleted since the last analyze; drives
  // staleness.
  Status RecordModifications(const std::string& column, size_t count);

  // Modified-fraction since the last analyze (0 when fresh). Typical
  // systems re-analyze beyond a threshold like 0.2.
  StatusOr<double> Staleness(const std::string& column) const;

  bool HasColumn(const std::string& column) const;
  std::vector<std::string> ColumnNames() const;
  size_t size() const { return entries_.size(); }

  // The persisted statistics of a column (for inspection/tests).
  StatusOr<const ColumnStatistics*> Statistics(const std::string& column) const;

  // Serializes every entry; LoadFromBytes rebuilds a full catalog.
  std::vector<uint8_t> SaveToBytes() const;
  static StatusOr<std::unique_ptr<StatisticsCatalog>> LoadFromBytes(
      std::vector<uint8_t> bytes);

 private:
  struct Entry {
    ColumnStatistics statistics;
    std::unique_ptr<SelectivityEstimator> estimator;
    size_t modifications = 0;
  };

  const Entry* Find(const std::string& column) const;

  std::map<std::string, Entry> entries_;
};

}  // namespace selest

#endif  // SELEST_CATALOG_STATISTICS_CATALOG_H_
