// A sharded LRU cache of deserialized estimators, the hot tier of the
// build-once/serve-many catalog (DESIGN.md §9).
//
// Estimates on the serve path are read-mostly and concurrent (the
// SelectivityEstimator contract makes const calls thread-safe), so the
// cache hands out shared_ptr<const ...>: an entry being evicted under one
// thread never invalidates an estimate in flight on another. Keys are
// sharded by hash across independently locked LRU lists; a lookup takes
// exactly one shard mutex, so threads serving different columns do not
// contend.
#ifndef SELEST_CATALOG_SERVING_CACHE_H_
#define SELEST_CATALOG_SERVING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/est/selectivity_estimator.h"

namespace selest {

// Identity of one cached/persisted estimator: the column it summarizes
// plus the fingerprint of the estimator configuration (see
// FingerprintConfig in est/estimator_factory.h). Different configs over
// the same column coexist in cache and store.
struct CatalogKey {
  std::string relation;
  std::string attribute;
  uint64_t fingerprint = 0;

  friend bool operator==(const CatalogKey& a, const CatalogKey& b) {
    return a.fingerprint == b.fingerprint && a.relation == b.relation &&
           a.attribute == b.attribute;
  }
};

struct CatalogKeyHash {
  size_t operator()(const CatalogKey& key) const;
};

// Counter snapshot; taken with relaxed atomics, so totals are exact only
// once concurrent traffic has quiesced.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t resident_entries = 0;
  // Sum of StorageBytes() over resident estimators.
  size_t resident_bytes = 0;
};

class ServingCache {
 public:
  // `capacity` is the total entry budget across shards; each shard holds at
  // most max(1, capacity / shards) entries. Shard count is clamped so a
  // tiny cache (the eviction tests use capacity 4) still enforces its
  // budget rather than spreading one slot per shard mutex.
  explicit ServingCache(size_t capacity, size_t num_shards = 8);

  ServingCache(const ServingCache&) = delete;
  ServingCache& operator=(const ServingCache&) = delete;

  // The cached estimator, or nullptr on miss. A hit refreshes LRU order.
  std::shared_ptr<const SelectivityEstimator> Lookup(const CatalogKey& key);

  // Inserts (or replaces) the entry, evicting the shard's least recently
  // used entries beyond its budget. `estimator` must be non-null.
  void Insert(const CatalogKey& key,
              std::shared_ptr<const SelectivityEstimator> estimator);

  // Drops the entry if present (e.g. after invalidating its snapshot).
  void Erase(const CatalogKey& key);

  CacheStats stats() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    CatalogKey key;
    std::shared_ptr<const SelectivityEstimator> estimator;
  };
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CatalogKey, std::list<Entry>::iterator, CatalogKeyHash>
        index;
  };

  Shard& ShardFor(const CatalogKey& key);

  size_t capacity_;
  size_t per_shard_capacity_;
  // unique_ptr because Shard (holding a mutex) is immovable.
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> insertions_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> resident_bytes_{0};
  std::atomic<size_t> resident_entries_{0};
};

}  // namespace selest

#endif  // SELEST_CATALOG_SERVING_CACHE_H_
