#include "src/multidim/dataset2d.h"

#include <algorithm>

#include "src/util/check.h"

namespace selest {

Dataset2d::Dataset2d(std::string name, Domain x_domain, Domain y_domain,
                     std::vector<Point2> points)
    : name_(std::move(name)),
      x_domain_(x_domain),
      y_domain_(y_domain),
      points_(std::move(points)) {
  SELEST_CHECK(!points_.empty());
  for (const Point2& p : points_) {
    SELEST_CHECK(x_domain_.Contains(p.x));
    SELEST_CHECK(y_domain_.Contains(p.y));
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point2& a, const Point2& b) { return a.x < b.x; });
}

size_t Dataset2d::CountInWindow(const WindowQuery& query) const {
  if (query.x_lo > query.x_hi || query.y_lo > query.y_hi) return 0;
  const auto first =
      std::lower_bound(points_.begin(), points_.end(), query.x_lo,
                       [](const Point2& p, double x) { return p.x < x; });
  const auto last =
      std::upper_bound(points_.begin(), points_.end(), query.x_hi,
                       [](double x, const Point2& p) { return x < p.x; });
  size_t count = 0;
  for (auto it = first; it != last; ++it) {
    if (it->y >= query.y_lo && it->y <= query.y_hi) ++count;
  }
  return count;
}

double Dataset2d::Selectivity(const WindowQuery& query) const {
  return static_cast<double>(CountInWindow(query)) /
         static_cast<double>(points_.size());
}

Dataset2d MakeQuantizedDataset2d(std::string name,
                                 const std::vector<Point2>& unit_points,
                                 int x_bits, int y_bits, size_t count) {
  SELEST_CHECK_GE(unit_points.size(), count);
  const Domain x_domain = BitDomain(x_bits);
  const Domain y_domain = BitDomain(y_bits);
  std::vector<Point2> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.push_back(
        {x_domain.Clamp(x_domain.Quantize(unit_points[i].x * x_domain.hi)),
         y_domain.Clamp(y_domain.Quantize(unit_points[i].y * y_domain.hi))});
  }
  return Dataset2d(std::move(name), x_domain, y_domain, std::move(points));
}

}  // namespace selest
