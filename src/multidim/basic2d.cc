#include "src/multidim/basic2d.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"

namespace selest {

double Uniform2dEstimator::EstimateSelectivity(
    const WindowQuery& query) const {
  if (query.x_lo > query.x_hi || query.y_lo > query.y_hi) return 0.0;
  const double x_overlap = std::min(query.x_hi, x_domain_.hi) -
                           std::max(query.x_lo, x_domain_.lo);
  const double y_overlap = std::min(query.y_hi, y_domain_.hi) -
                           std::max(query.y_lo, y_domain_.lo);
  if (x_overlap <= 0.0 || y_overlap <= 0.0) return 0.0;
  return (x_overlap / x_domain_.width()) * (y_overlap / y_domain_.width());
}

StatusOr<Sampling2dEstimator> Sampling2dEstimator::Create(
    std::span<const Point2> sample) {
  if (sample.empty()) {
    return InvalidArgumentError("2-D sampling estimator needs a sample");
  }
  std::vector<Point2> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Point2& a, const Point2& b) { return a.x < b.x; });
  return Sampling2dEstimator(std::move(sorted));
}

double Sampling2dEstimator::EstimateSelectivity(
    const WindowQuery& query) const {
  if (query.x_lo > query.x_hi || query.y_lo > query.y_hi) return 0.0;
  const auto first =
      std::lower_bound(sample_.begin(), sample_.end(), query.x_lo,
                       [](const Point2& p, double x) { return p.x < x; });
  const auto last =
      std::upper_bound(sample_.begin(), sample_.end(), query.x_hi,
                       [](double x, const Point2& p) { return x < p.x; });
  size_t count = 0;
  for (auto it = first; it != last; ++it) {
    if (it->y >= query.y_lo && it->y <= query.y_hi) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(sample_.size());
}

std::vector<Point2> SamplePointsWithoutReplacement(
    std::span<const Point2> population, size_t sample_size, Rng& rng) {
  SELEST_CHECK_LE(sample_size, population.size());
  const size_t n = population.size();
  std::unordered_set<size_t> chosen;
  chosen.reserve(sample_size * 2);
  std::vector<Point2> sample;
  sample.reserve(sample_size);
  for (size_t j = n - sample_size; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng.NextUint64(j + 1));
    const size_t pick = chosen.insert(t).second ? t : j;
    if (pick != t) chosen.insert(pick);
    sample.push_back(population[pick]);
  }
  return sample;
}

}  // namespace selest
