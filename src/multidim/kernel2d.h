// Product-kernel 2-D selectivity estimator — the multidimensional kernel
// estimator named as future work in §6.
//
// With the product Epanechnikov kernel K(u, v) = K(u)·K(v) and per-axis
// bandwidths (h_x, h_y), the window selectivity factorizes per sample:
//
//   σ̂(W) = (1/n) Σ_i [F((x_hi−X_i)/h_x) − F((x_lo−X_i)/h_x)]
//                 · [F((y_hi−Y_i)/h_y) − F((y_lo−Y_i)/h_y)]
//
// which generalizes Alg. 1 directly. The multivariate normal scale rule
// scales bandwidths as n^(−1/6) (AMISE-optimal rate for d = 2, [11]).
// Boundary bias is treated by reflection across each domain edge (corner
// samples reflect across both).
#ifndef SELEST_MULTIDIM_KERNEL2D_H_
#define SELEST_MULTIDIM_KERNEL2D_H_

#include <span>
#include <vector>

#include "src/density/kde.h"
#include "src/density/kernel.h"
#include "src/multidim/estimator2d.h"
#include "src/util/status.h"

namespace selest {

struct Kernel2dOptions {
  // Per-axis bandwidths; 0 means "use the multivariate normal scale rule".
  double x_bandwidth = 0.0;
  double y_bandwidth = 0.0;
  Kernel kernel = Kernel(KernelType::kEpanechnikov);
  // kNone or kReflection (boundary kernels are 1-D constructions and are
  // not supported here).
  BoundaryPolicy boundary = BoundaryPolicy::kReflection;
};

// The multivariate normal scale bandwidth for axis scale `sigma`:
//   h = C(K) · sigma · n^(−1/(d+4)),  d = 2.
double NormalScaleBandwidth2d(double sigma, size_t n, const Kernel& kernel);

class Kernel2dEstimator : public Selectivity2dEstimator {
 public:
  static StatusOr<Kernel2dEstimator> Create(std::span<const Point2> sample,
                                            const Domain& x_domain,
                                            const Domain& y_domain,
                                            const Kernel2dOptions& options);

  double EstimateSelectivity(const WindowQuery& query) const override;
  size_t StorageBytes() const override;
  std::string name() const override;

  double x_bandwidth() const { return x_bandwidth_; }
  double y_bandwidth() const { return y_bandwidth_; }
  size_t sample_size() const { return original_count_; }

 private:
  Kernel2dEstimator(std::vector<Point2> sorted, size_t original_count,
                    Domain x_domain, Domain y_domain, double hx, double hy,
                    Kernel kernel, BoundaryPolicy boundary)
      : sorted_(std::move(sorted)),
        original_count_(original_count),
        x_domain_(x_domain),
        y_domain_(y_domain),
        x_bandwidth_(hx),
        y_bandwidth_(hy),
        kernel_(kernel),
        boundary_(boundary) {}

  std::vector<Point2> sorted_;  // by x; reflected copies included
  size_t original_count_;
  Domain x_domain_;
  Domain y_domain_;
  double x_bandwidth_;
  double y_bandwidth_;
  Kernel kernel_;
  BoundaryPolicy boundary_;
};

}  // namespace selest

#endif  // SELEST_MULTIDIM_KERNEL2D_H_
