// Baseline 2-D estimators: uniform (independence + uniformity, the
// System R default) and pure sampling.
#ifndef SELEST_MULTIDIM_BASIC2D_H_
#define SELEST_MULTIDIM_BASIC2D_H_

#include <span>
#include <vector>

#include "src/multidim/estimator2d.h"
#include "src/util/status.h"

namespace selest {

// Assumes points are uniform over the domain rectangle: selectivity is the
// window's area fraction.
class Uniform2dEstimator : public Selectivity2dEstimator {
 public:
  Uniform2dEstimator(const Domain& x_domain, const Domain& y_domain)
      : x_domain_(x_domain), y_domain_(y_domain) {}

  double EstimateSelectivity(const WindowQuery& query) const override;
  size_t StorageBytes() const override { return 4 * sizeof(double); }
  std::string name() const override { return "uniform2d"; }

 private:
  Domain x_domain_;
  Domain y_domain_;
};

// Fraction of sample points falling inside the window. Points are kept
// sorted by x so evaluation scans only the x-slab.
class Sampling2dEstimator : public Selectivity2dEstimator {
 public:
  static StatusOr<Sampling2dEstimator> Create(std::span<const Point2> sample);

  double EstimateSelectivity(const WindowQuery& query) const override;
  size_t StorageBytes() const override {
    return sample_.size() * sizeof(Point2);
  }
  std::string name() const override { return "sampling2d"; }

  size_t sample_size() const { return sample_.size(); }

 private:
  explicit Sampling2dEstimator(std::vector<Point2> sample)
      : sample_(std::move(sample)) {}

  std::vector<Point2> sample_;  // sorted by x
};

// Draws a 2-D sample without replacement (Floyd's algorithm over indices).
std::vector<Point2> SamplePointsWithoutReplacement(
    std::span<const Point2> population, size_t sample_size, Rng& rng);

}  // namespace selest

#endif  // SELEST_MULTIDIM_BASIC2D_H_
