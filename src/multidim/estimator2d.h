// Interface for 2-D (window-query) selectivity estimators.
#ifndef SELEST_MULTIDIM_ESTIMATOR2D_H_
#define SELEST_MULTIDIM_ESTIMATOR2D_H_

#include <cstddef>
#include <string>

#include "src/multidim/dataset2d.h"

namespace selest {

class Selectivity2dEstimator {
 public:
  virtual ~Selectivity2dEstimator() = default;

  // Estimated selectivity of the window in [0, 1].
  virtual double EstimateSelectivity(const WindowQuery& query) const = 0;

  double EstimateResultSize(const WindowQuery& query,
                            size_t num_records) const {
    return EstimateSelectivity(query) * static_cast<double>(num_records);
  }

  virtual size_t StorageBytes() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace selest

#endif  // SELEST_MULTIDIM_ESTIMATOR2D_H_
