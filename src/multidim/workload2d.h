// Window-query workloads: the 2-D analogue of query/workload.h.
#ifndef SELEST_MULTIDIM_WORKLOAD2D_H_
#define SELEST_MULTIDIM_WORKLOAD2D_H_

#include <vector>

#include "src/multidim/dataset2d.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace selest {

struct Workload2dConfig {
  // Window side length per axis, as a fraction of that axis's domain width
  // (a 0.1 × 0.1 window covers 1% of the area).
  double side_fraction = 0.1;
  size_t num_queries = 1000;
  bool reject_empty = true;
};

// Windows centered on randomly drawn data points (positions follow the
// data distribution, as in §5.1.2); windows crossing the domain boundary
// are re-drawn. Status-first: an invalid config is kInvalidArgument and
// rejection-sampling exhaustion (1000·num_queries rejected draws — e.g.
// every candidate window crosses a boundary or is empty) is
// kResourceExhausted, never an abort.
StatusOr<std::vector<WindowQuery>> GenerateWorkload2d(
    const Dataset2d& data, const Workload2dConfig& config, Rng& rng);

}  // namespace selest

#endif  // SELEST_MULTIDIM_WORKLOAD2D_H_
