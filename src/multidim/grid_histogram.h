// Equi-width grid histogram: the 2-D analogue of the equi-width histogram,
// with the uniform-in-cell assumption and per-axis partial overlap (the 2-D
// version of formula (4)'s ψ).
#ifndef SELEST_MULTIDIM_GRID_HISTOGRAM_H_
#define SELEST_MULTIDIM_GRID_HISTOGRAM_H_

#include <span>
#include <vector>

#include "src/multidim/estimator2d.h"
#include "src/util/status.h"

namespace selest {

class GridHistogram : public Selectivity2dEstimator {
 public:
  // x_bins × y_bins equal cells over the domain rectangle.
  static StatusOr<GridHistogram> Create(std::span<const Point2> sample,
                                        const Domain& x_domain,
                                        const Domain& y_domain, int x_bins,
                                        int y_bins);

  double EstimateSelectivity(const WindowQuery& query) const override;
  size_t StorageBytes() const override {
    return counts_.size() * sizeof(double);
  }
  std::string name() const override;

  int x_bins() const { return x_bins_; }
  int y_bins() const { return y_bins_; }
  // Count of cell (i, j); i indexes x, j indexes y.
  double cell_count(int i, int j) const {
    return counts_[static_cast<size_t>(j) * x_bins_ + i];
  }

 private:
  GridHistogram(Domain x_domain, Domain y_domain, int x_bins, int y_bins,
                std::vector<double> counts, double total)
      : x_domain_(x_domain),
        y_domain_(y_domain),
        x_bins_(x_bins),
        y_bins_(y_bins),
        counts_(std::move(counts)),
        total_(total) {}

  Domain x_domain_;
  Domain y_domain_;
  int x_bins_;
  int y_bins_;
  std::vector<double> counts_;  // row-major, y-major order
  double total_;
};

}  // namespace selest

#endif  // SELEST_MULTIDIM_GRID_HISTOGRAM_H_
