#include "src/multidim/kernel2d.h"

#include <algorithm>
#include <cmath>

#include "src/util/stats.h"

namespace selest {

double NormalScaleBandwidth2d(double sigma, size_t n, const Kernel& kernel) {
  // d = 2: the AMISE-optimal bandwidth shrinks as n^(−1/(d+4)) = n^(−1/6);
  // the kernel constant of the 1-D rule carries over for product kernels up
  // to a factor near one, which the plug-in machinery would refine.
  return kernel.normal_scale_constant() * sigma *
         std::pow(static_cast<double>(n), -1.0 / 6.0);
}

StatusOr<Kernel2dEstimator> Kernel2dEstimator::Create(
    std::span<const Point2> sample, const Domain& x_domain,
    const Domain& y_domain, const Kernel2dOptions& options) {
  if (sample.empty()) {
    return InvalidArgumentError("2-D kernel estimator needs a sample");
  }
  if (options.boundary == BoundaryPolicy::kBoundaryKernel) {
    return InvalidArgumentError(
        "boundary kernels are not supported in 2-D; use reflection");
  }

  double hx = options.x_bandwidth;
  double hy = options.y_bandwidth;
  if (hx <= 0.0 || hy <= 0.0) {
    std::vector<double> xs(sample.size());
    std::vector<double> ys(sample.size());
    for (size_t i = 0; i < sample.size(); ++i) {
      xs[i] = sample[i].x;
      ys[i] = sample[i].y;
    }
    const double sx = NormalScaleSigma(xs);
    const double sy = NormalScaleSigma(ys);
    if (hx <= 0.0) {
      hx = sx > 0.0 ? NormalScaleBandwidth2d(sx, sample.size(), options.kernel)
                    : x_domain.width() / 100.0;
    }
    if (hy <= 0.0) {
      hy = sy > 0.0 ? NormalScaleBandwidth2d(sy, sample.size(), options.kernel)
                    : y_domain.width() / 100.0;
    }
  }
  if (!std::isfinite(hx) || !std::isfinite(hy) || hx <= 0.0 || hy <= 0.0) {
    return InvalidArgumentError("2-D kernel bandwidths must be positive");
  }

  std::vector<Point2> points(sample.begin(), sample.end());
  const size_t original_count = points.size();
  if (options.boundary == BoundaryPolicy::kReflection) {
    const double rx = options.kernel.support_radius() * hx;
    const double ry = options.kernel.support_radius() * hy;
    for (size_t i = 0; i < original_count; ++i) {
      const Point2 p = points[i];
      const bool left = p.x - x_domain.lo < rx;
      const bool right = x_domain.hi - p.x < rx;
      const bool bottom = p.y - y_domain.lo < ry;
      const bool top = y_domain.hi - p.y < ry;
      const double mx = left ? 2.0 * x_domain.lo - p.x
                             : (right ? 2.0 * x_domain.hi - p.x : p.x);
      const double my = bottom ? 2.0 * y_domain.lo - p.y
                               : (top ? 2.0 * y_domain.hi - p.y : p.y);
      if (left || right) points.push_back({mx, p.y});
      if (bottom || top) points.push_back({p.x, my});
      // Corner samples additionally reflect across both edges.
      if ((left || right) && (bottom || top)) points.push_back({mx, my});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const Point2& a, const Point2& b) { return a.x < b.x; });
  return Kernel2dEstimator(std::move(points), original_count, x_domain,
                           y_domain, hx, hy, options.kernel,
                           options.boundary);
}

double Kernel2dEstimator::EstimateSelectivity(const WindowQuery& query) const {
  if (query.x_lo > query.x_hi || query.y_lo > query.y_hi) return 0.0;
  const double x_lo = x_domain_.Clamp(query.x_lo);
  const double x_hi = x_domain_.Clamp(query.x_hi);
  const double y_lo = y_domain_.Clamp(query.y_lo);
  const double y_hi = y_domain_.Clamp(query.y_hi);
  if (x_lo >= x_hi || y_lo >= y_hi) return 0.0;

  const double rx = kernel_.support_radius() * x_bandwidth_;
  const auto first =
      std::lower_bound(sorted_.begin(), sorted_.end(), x_lo - rx,
                       [](const Point2& p, double x) { return p.x < x; });
  const auto last =
      std::upper_bound(sorted_.begin(), sorted_.end(), x_hi + rx,
                       [](double x, const Point2& p) { return x < p.x; });
  double sum = 0.0;
  for (auto it = first; it != last; ++it) {
    const double fx = kernel_.Cdf((x_hi - it->x) / x_bandwidth_) -
                      kernel_.Cdf((x_lo - it->x) / x_bandwidth_);
    if (fx <= 0.0) continue;
    const double fy = kernel_.Cdf((y_hi - it->y) / y_bandwidth_) -
                      kernel_.Cdf((y_lo - it->y) / y_bandwidth_);
    if (fy <= 0.0) continue;
    sum += fx * fy;
  }
  return std::clamp(sum / static_cast<double>(original_count_), 0.0, 1.0);
}

size_t Kernel2dEstimator::StorageBytes() const {
  return original_count_ * sizeof(Point2) + 2 * sizeof(double);
}

std::string Kernel2dEstimator::name() const {
  return "kernel2d(" + kernel_.name() + ", " + BoundaryPolicyName(boundary_) +
         ")";
}

}  // namespace selest
