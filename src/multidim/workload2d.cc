#include "src/multidim/workload2d.h"

#include <string>

namespace selest {

StatusOr<std::vector<WindowQuery>> GenerateWorkload2d(
    const Dataset2d& data, const Workload2dConfig& config, Rng& rng) {
  if (!(config.side_fraction > 0.0 && config.side_fraction <= 1.0)) {
    return InvalidArgumentError("side_fraction must be in (0, 1]");
  }
  if (config.num_queries == 0) {
    return InvalidArgumentError("num_queries must be positive");
  }
  const double half_w = 0.5 * config.side_fraction * data.x_domain().width();
  const double half_h = 0.5 * config.side_fraction * data.y_domain().width();

  std::vector<WindowQuery> queries;
  queries.reserve(config.num_queries);
  size_t attempts = 0;
  const size_t max_attempts = 1000 * config.num_queries;
  while (queries.size() < config.num_queries) {
    if (attempts >= max_attempts) {
      return ResourceExhaustedError(
          "2-D workload generation rejected " + std::to_string(attempts) +
          " candidate windows before reaching " +
          std::to_string(config.num_queries) +
          " (data too concentrated near a boundary, or no non-empty window "
          "of this size exists)");
    }
    ++attempts;
    const Point2& center = data.points()[rng.NextUint64(data.size())];
    const WindowQuery query{center.x - half_w, center.x + half_w,
                            center.y - half_h, center.y + half_h};
    if (query.x_lo < data.x_domain().lo || query.x_hi > data.x_domain().hi ||
        query.y_lo < data.y_domain().lo || query.y_hi > data.y_domain().hi) {
      continue;
    }
    if (config.reject_empty && data.CountInWindow(query) == 0) continue;
    queries.push_back(query);
  }
  return queries;
}

}  // namespace selest
