#include "src/multidim/grid_histogram.h"

#include <algorithm>
#include <cmath>

namespace selest {
namespace {

// Index of the cell containing v along an axis split into `bins` cells.
int CellIndex(double v, const Domain& domain, int bins) {
  const double relative = (v - domain.lo) / domain.width();
  const int index = static_cast<int>(relative * bins);
  return std::clamp(index, 0, bins - 1);
}

// Overlap fraction of [lo, hi] with cell i of the axis.
double AxisOverlap(double lo, double hi, const Domain& domain, int bins,
                   int i) {
  const double cell_width = domain.width() / bins;
  const double cell_lo = domain.lo + i * cell_width;
  const double cell_hi = cell_lo + cell_width;
  const double overlap = std::min(hi, cell_hi) - std::max(lo, cell_lo);
  return overlap <= 0.0 ? 0.0 : overlap / cell_width;
}

}  // namespace

StatusOr<GridHistogram> GridHistogram::Create(std::span<const Point2> sample,
                                              const Domain& x_domain,
                                              const Domain& y_domain,
                                              int x_bins, int y_bins) {
  if (sample.empty()) {
    return InvalidArgumentError("grid histogram needs a sample");
  }
  if (x_bins < 1 || y_bins < 1) {
    return InvalidArgumentError("grid histogram needs >= 1 bin per axis");
  }
  std::vector<double> counts(static_cast<size_t>(x_bins) * y_bins, 0.0);
  for (const Point2& p : sample) {
    const int i = CellIndex(p.x, x_domain, x_bins);
    const int j = CellIndex(p.y, y_domain, y_bins);
    counts[static_cast<size_t>(j) * x_bins + i] += 1.0;
  }
  return GridHistogram(x_domain, y_domain, x_bins, y_bins, std::move(counts),
                       static_cast<double>(sample.size()));
}

double GridHistogram::EstimateSelectivity(const WindowQuery& query) const {
  if (query.x_lo > query.x_hi || query.y_lo > query.y_hi) return 0.0;
  const double x_lo = std::max(query.x_lo, x_domain_.lo);
  const double x_hi = std::min(query.x_hi, x_domain_.hi);
  const double y_lo = std::max(query.y_lo, y_domain_.lo);
  const double y_hi = std::min(query.y_hi, y_domain_.hi);
  if (x_lo >= x_hi || y_lo >= y_hi) return 0.0;

  const int i_lo = CellIndex(x_lo, x_domain_, x_bins_);
  const int i_hi = CellIndex(x_hi, x_domain_, x_bins_);
  const int j_lo = CellIndex(y_lo, y_domain_, y_bins_);
  const int j_hi = CellIndex(y_hi, y_domain_, y_bins_);
  double mass = 0.0;
  for (int j = j_lo; j <= j_hi; ++j) {
    const double y_frac = AxisOverlap(y_lo, y_hi, y_domain_, y_bins_, j);
    if (y_frac <= 0.0) continue;
    for (int i = i_lo; i <= i_hi; ++i) {
      const double x_frac = AxisOverlap(x_lo, x_hi, x_domain_, x_bins_, i);
      if (x_frac <= 0.0) continue;
      mass += cell_count(i, j) * x_frac * y_frac;
    }
  }
  return std::clamp(mass / total_, 0.0, 1.0);
}

std::string GridHistogram::name() const {
  return "grid(" + std::to_string(x_bins_) + "x" + std::to_string(y_bins_) +
         ")";
}

}  // namespace selest
