// Two-dimensional datasets for window (2-D range) queries.
//
// The paper's future work (§6) names multidimensional kernel estimators for
// multidimensional range queries as the first open problem; spatial data is
// its motivating domain. This module provides the 2-D substrate: a point
// dataset with exact window counts.
#ifndef SELEST_MULTIDIM_DATASET2D_H_
#define SELEST_MULTIDIM_DATASET2D_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/data/domain.h"
#include "src/data/spatial.h"

namespace selest {

// An axis-aligned window query: retrieve all points with
// x_lo <= x <= x_hi and y_lo <= y <= y_hi.
struct WindowQuery {
  double x_lo = 0.0;
  double x_hi = 0.0;
  double y_lo = 0.0;
  double y_hi = 0.0;

  double width() const { return x_hi - x_lo; }
  double height() const { return y_hi - y_lo; }
  double area() const { return width() * height(); }
};

// A two-attribute relation of points over a rectangular domain. Points are
// stored sorted by x, so exact window counts need only scan the points in
// the query's x-slab.
class Dataset2d {
 public:
  Dataset2d(std::string name, Domain x_domain, Domain y_domain,
            std::vector<Point2> points);

  const std::string& name() const { return name_; }
  const Domain& x_domain() const { return x_domain_; }
  const Domain& y_domain() const { return y_domain_; }
  // Points sorted ascending by x.
  const std::vector<Point2>& points() const { return points_; }
  size_t size() const { return points_.size(); }

  // Exact number of points inside the window (boundaries inclusive).
  // O(log n + s) with s points in the x-slab.
  size_t CountInWindow(const WindowQuery& query) const;

  // Exact selectivity: CountInWindow / size.
  double Selectivity(const WindowQuery& query) const;

 private:
  std::string name_;
  Domain x_domain_;
  Domain y_domain_;
  std::vector<Point2> points_;  // sorted by x
};

// Builds a Dataset2d over the unit square scaled to p-bit integer domains
// per axis (matching how the paper maps coordinates, Table 2).
Dataset2d MakeQuantizedDataset2d(std::string name,
                                 const std::vector<Point2>& unit_points,
                                 int x_bits, int y_bits, size_t count);

}  // namespace selest

#endif  // SELEST_MULTIDIM_DATASET2D_H_
