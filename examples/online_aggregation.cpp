// Online aggregation: watch a selectivity estimate converge while the
// system keeps sampling (paper §6, future work; Hellerstein et al. [6]).
//
// Streams random records from a large relation into an online estimator
// and stops as soon as the 95% confidence interval is tighter than a
// target precision — the "approximate answers delivered in considerably
// less time" workflow of the introduction.
#include <cstdio>

#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/online/online_estimator.h"
#include "src/query/ground_truth.h"
#include "src/util/random.h"

int main() {
  using namespace selest;

  // A 2,000,000-record relation (too big to scan "interactively").
  Rng rng(99);
  const Domain domain = BitDomain(22);
  const ExponentialDistribution dist(8.0 / domain.width());
  const Dataset table = GenerateDataset("events", dist, 2000000, domain, rng);
  const GroundTruth truth(table);

  // COUNT(*) WHERE a <= attr <= b, as a fraction of the relation.
  const RangeQuery query{0.05 * domain.hi, 0.10 * domain.hi};
  const double target_half_width = 0.002;  // ±0.2 points of selectivity

  OnlineSelectivityEstimator online(domain);
  Rng stream = rng.Fork();

  std::printf("streaming samples until the 95%% CI is within ±%.3f...\n\n",
              target_half_width);
  std::printf("%10s  %12s  %24s  %10s\n", "samples", "estimate",
              "95% confidence interval", "CI width");
  size_t next_report = 64;
  IntervalEstimate estimate;
  while (true) {
    online.AddSample(table.values()[stream.NextUint64(table.size())]);
    if (online.samples_seen() < next_report) continue;
    next_report *= 2;
    estimate = online.Estimate(query);
    std::printf("%10zu  %12.5f  [%10.5f, %10.5f]  %10.5f\n", estimate.samples,
                estimate.estimate, estimate.lo, estimate.hi,
                estimate.hi - estimate.lo);
    if (estimate.half_width() <= target_half_width) break;
    if (online.samples_seen() > table.size()) break;  // safety stop
  }

  const double exact = truth.Selectivity(query);
  std::printf(
      "\nstopped after %zu samples (%.2f%% of the relation)\n"
      "estimate: %.5f   exact: %.5f   inside CI: %s\n",
      estimate.samples,
      100.0 * static_cast<double>(estimate.samples) /
          static_cast<double>(table.size()),
      estimate.estimate, exact,
      (exact >= estimate.lo && exact <= estimate.hi) ? "yes" : "no");
  return 0;
}
