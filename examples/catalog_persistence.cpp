// Statistics catalog: analyze, persist, reload, and track staleness — the
// ANALYZE / system-catalog workflow around the estimators.
#include <cstdio>

#include "src/catalog/statistics_catalog.h"
#include "src/data/distribution.h"
#include "src/eval/report.h"

int main() {
  using namespace selest;

  // Two columns of an "orders" relation with different shapes.
  Rng rng(31337);
  const Domain domain = BitDomain(20);
  const NormalDistribution amount_dist(0.5 * domain.hi, domain.width() / 8.0);
  const ExponentialDistribution delay_dist(8.0 / domain.width());
  const Dataset amount =
      GenerateDataset("amount", amount_dist, 150000, domain, rng);
  const Dataset delay =
      GenerateDataset("delay", delay_dist, 150000, domain, rng);

  // ANALYZE: kernel statistics for the smooth column, equi-width for the
  // skewed one.
  StatisticsCatalog catalog;
  Rng analyze_rng = rng.Fork();
  EstimatorConfig kernel_config;
  kernel_config.kind = EstimatorKind::kKernel;
  kernel_config.smoothing = SmoothingRule::kDirectPlugIn;
  EstimatorConfig histogram_config;
  histogram_config.kind = EstimatorKind::kEquiWidth;
  if (!catalog.AnalyzeColumn(amount, kernel_config, 2000, analyze_rng).ok() ||
      !catalog.AnalyzeColumn(delay, histogram_config, 2000, analyze_rng)
           .ok()) {
    return 1;
  }
  std::printf("analyzed %zu columns\n", catalog.size());

  // Persist and reload — what a restart would do.
  const std::vector<uint8_t> bytes = catalog.SaveToBytes();
  auto reloaded = StatisticsCatalog::LoadFromBytes(bytes);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("catalog persisted as %zu bytes and reloaded\n\n", bytes.size());

  // Identical estimates before and after the round trip.
  TextTable table({"column", "predicate", "estimate (live)",
                   "estimate (reloaded)", "exact"});
  const struct {
    const char* column;
    const Dataset* data;
    double lo_frac, hi_frac;
  } probes[] = {{"amount", &amount, 0.48, 0.52},
                {"delay", &delay, 0.00, 0.05}};
  for (const auto& probe : probes) {
    const RangeQuery q{probe.lo_frac * domain.hi, probe.hi_frac * domain.hi};
    const auto live = catalog.EstimateResultSize(probe.column, q);
    const auto persisted = (*reloaded)->EstimateResultSize(probe.column, q);
    if (!live.ok() || !persisted.ok()) return 1;
    table.AddRow({probe.column,
                  "[" + FormatDouble(q.a, 0) + ", " + FormatDouble(q.b, 0) +
                      "]",
                  FormatDouble(live.value(), 0),
                  FormatDouble(persisted.value(), 0),
                  std::to_string(probe.data->CountInRange(q.a, q.b))});
  }
  table.Print();

  // Staleness bookkeeping drives re-ANALYZE decisions.
  (void)catalog.RecordModifications("amount", 45000);
  std::printf(
      "\nafter 45,000 modifications, staleness(amount) = %.2f "
      "(re-analyze above 0.20)\n",
      catalog.Staleness("amount").value());
  return 0;
}
