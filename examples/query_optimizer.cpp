// Query-optimizer scenario: choosing access paths with estimated
// selectivities.
//
// The original motivation for selectivity estimation (System R [12]): an
// optimizer picks an index scan when a predicate is selective enough and a
// full scan otherwise. This example builds a two-column relation, estimates
// the selectivity of conjunctive range predicates per column, and shows how
// the estimator's quality changes the plan choice.
#include <cstdio>
#include <memory>

#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/relation.h"
#include "src/est/estimator_factory.h"
#include "src/eval/report.h"
#include "src/sample/sampler.h"
#include "src/util/random.h"

namespace {

// Plan costs in abstract page fetches: a full scan reads every record
// sequentially; an index scan pays a per-match random-access penalty.
constexpr double kSequentialCostPerRecord = 1.0;
constexpr double kRandomCostPerMatch = 40.0;

const char* ChoosePlan(double estimated_matches, double num_records) {
  const double full_scan = kSequentialCostPerRecord * num_records;
  const double index_scan = kRandomCostPerMatch * estimated_matches;
  return index_scan < full_scan ? "index scan" : "full scan";
}

}  // namespace

int main() {
  using namespace selest;

  Rng rng(7);
  const Domain domain = BitDomain(20);
  // "orders" relation: `amount` is exponentially skewed (many small
  // orders), `ship_date` is roughly uniform over the year.
  const ExponentialDistribution amount_dist(8.0 / domain.width());
  const UniformDistribution date_dist(domain.lo, domain.hi);
  auto amount = std::make_shared<Dataset>(
      GenerateDataset("amount", amount_dist, 200000, domain, rng));
  auto ship_date = std::make_shared<Dataset>(
      GenerateDataset("ship_date", date_dist, 200000, domain, rng));
  auto relation = Relation::Create("orders", {amount, ship_date});
  if (!relation.ok()) {
    std::fprintf(stderr, "%s\n", relation.status().ToString().c_str());
    return 1;
  }
  const double n = static_cast<double>(relation->num_records());
  std::printf("relation orders: %zu records\n\n", relation->num_records());

  // Catalog construction: one kernel estimator per column, built from a
  // 2,000-record sample each.
  Rng sampler = rng.Fork();
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;

  TextTable table({"predicate", "estimated matches", "exact matches",
                   "plan (estimated)", "plan (exact)"});
  struct Predicate {
    const char* label;
    const char* column;
    double lo_fraction;
    double hi_fraction;
  };
  const Predicate predicates[] = {
      {"amount in top half", "amount", 0.50, 1.00},
      {"amount in [0.5%, 1.5%] band", "amount", 0.005, 0.015},
      {"ship_date in one week (~2%)", "ship_date", 0.40, 0.42},
      {"ship_date in one quarter", "ship_date", 0.25, 0.50},
  };
  for (const Predicate& p : predicates) {
    auto column = relation->Column(p.column);
    if (!column.ok()) return 1;
    const Dataset& data = **column;
    const std::vector<double> sample =
        SampleWithoutReplacement(data.values(), 2000, sampler);
    auto estimator = BuildEstimator(sample, data.domain(), config);
    if (!estimator.ok()) return 1;
    const double a = data.domain().lo + p.lo_fraction * data.domain().width();
    const double b = data.domain().lo + p.hi_fraction * data.domain().width();
    const double estimated =
        (*estimator)->EstimateSelectivity(a, b) * n;
    const auto exact = relation->CountRange(p.column, a, b);
    if (!exact.ok()) return 1;
    table.AddRow({p.label, FormatDouble(estimated, 0),
                  std::to_string(exact.value()), ChoosePlan(estimated, n),
                  ChoosePlan(static_cast<double>(exact.value()), n)});
  }
  table.Print();
  std::printf(
      "\nindex scan is chosen when %.0f * matches < %.0f * records;\n"
      "a good estimator makes the estimated plan match the exact plan.\n",
      kRandomCostPerMatch, kSequentialCostPerRecord);
  return 0;
}
