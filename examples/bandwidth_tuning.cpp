// Bandwidth tuning: how the smoothing-parameter rules of §4 compare.
//
// Builds one smooth and one rough dataset, then reports the bandwidth and
// the resulting error for the normal scale rule, the direct plug-in rule
// (1–3 stages) and the oracle search — the comparison behind Fig. 11.
#include <cstdio>

#include "src/data/distribution.h"
#include "src/eval/experiment.h"
#include "src/eval/paper_data.h"
#include "src/eval/report.h"
#include "src/smoothing/direct_plug_in.h"
#include "src/smoothing/normal_scale.h"
#include "src/smoothing/oracle.h"

int main() {
  using namespace selest;

  for (const char* name : {"n(20)", "arap1"}) {
    auto data = MakePaperDataset(name);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    std::printf("data file %s (%zu records)\n", name, data->size());

    ProtocolConfig protocol;
    protocol.num_queries = 500;
    const ExperimentSetup setup = MakeSetup(*data, protocol);

    EstimatorConfig kernel_config;
    kernel_config.kind = EstimatorKind::kKernel;
    auto objective = MakeBandwidthObjective(setup, kernel_config);

    TextTable table({"rule", "bandwidth", "MRE of 1% queries"});
    const double h_ns = NormalScaleBandwidth(setup.sample, setup.domain());
    table.AddRow({"normal scale", FormatDouble(h_ns, 1),
                  FormatPercent(objective(h_ns))});
    for (int stages = 1; stages <= 3; ++stages) {
      const double h = DirectPlugInBandwidth(setup.sample, setup.domain(),
                                             Kernel(), stages);
      table.AddRow({"direct plug-in, " + std::to_string(stages) + " stage(s)",
                    FormatDouble(h, 1), FormatPercent(objective(h))});
    }
    const double h_opt = FindOptimalSmoothing(
        objective, setup.domain().width() * 1e-4, setup.domain().width() * 0.2);
    table.AddRow({"oracle (h-opt)", FormatDouble(h_opt, 1),
                  FormatPercent(objective(h_opt))});
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "the normal scale rule is near-optimal on Gaussian-like data but\n"
      "oversmooths rough data; the plug-in rule adapts by estimating the\n"
      "curvature functional R(f'') from the sample itself (paper §4.3).\n");
  return 0;
}
