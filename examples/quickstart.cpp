// Quickstart: estimate range-query selectivities from a 2,000-record sample.
//
// Walks the full pipeline: generate a table, draw a sample, build the
// estimators of the paper, and compare their answers against the exact
// result size of a query.
#include <cstdio>

#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/eval/report.h"
#include "src/query/ground_truth.h"
#include "src/sample/sampler.h"
#include "src/util/random.h"

int main() {
  using namespace selest;

  // A relation with 100,000 records whose metric attribute follows a
  // normal distribution over the 20-bit integer domain [0, 2^20 − 1].
  Rng rng(2024);
  const Domain domain = BitDomain(20);
  const NormalDistribution distribution(0.5 * domain.hi,
                                        domain.width() / 8.0);
  const Dataset table =
      GenerateDataset("normal(20)", distribution, 100000, domain, rng);

  // The estimators only ever see a 2,000-record random sample.
  Rng sample_rng = rng.Fork();
  const std::vector<double> sample =
      SampleWithoutReplacement(table.values(), 2000, sample_rng);

  // A 1%-of-domain range query around the mean.
  const double center = 0.5 * domain.hi;
  const RangeQuery query{center - 0.005 * domain.width(),
                         center + 0.005 * domain.width()};
  const GroundTruth truth(table);
  std::printf("relation: %s, %zu records, domain %s\n", table.name().c_str(),
              table.size(), domain.ToString().c_str());
  std::printf("query: [%.0f, %.0f]  exact result size: %zu\n\n", query.a,
              query.b, truth.Count(query));

  TextTable report({"estimator", "estimated size", "relative error",
                    "catalog bytes"});
  for (EstimatorKind kind :
       {EstimatorKind::kUniform, EstimatorKind::kSampling,
        EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
        EstimatorKind::kMaxDiff, EstimatorKind::kAverageShifted,
        EstimatorKind::kKernel, EstimatorKind::kHybrid}) {
    EstimatorConfig config;
    config.kind = kind;  // normal scale rule, boundary kernels by default
    auto estimator = BuildEstimator(sample, domain, config);
    if (!estimator.ok()) {
      std::fprintf(stderr, "building %s failed: %s\n",
                   EstimatorKindName(kind),
                   estimator.status().ToString().c_str());
      return 1;
    }
    const double estimate =
        (*estimator)->EstimateResultSize(query, table.size());
    const double exact = static_cast<double>(truth.Count(query));
    report.AddRow({(*estimator)->name(), FormatDouble(estimate, 1),
                   FormatPercent(std::abs(estimate - exact) / exact),
                   std::to_string((*estimator)->StorageBytes())});
  }
  report.Print();
  return 0;
}
