// Spatial-catalog scenario: estimators on rough street-map marginals.
//
// Spatial databases are the paper's motivating domain for metric attributes
// with large domains. This example builds the synthetic Arapahoe-style
// street network, projects both coordinates, and compares the final four
// estimators of Fig. 12 on 1% window queries — showing the hybrid
// estimator's advantage on rough "real" densities.
#include <cstdio>

#include "src/data/spatial.h"
#include "src/eval/experiment.h"
#include "src/eval/report.h"
#include "src/util/random.h"

int main() {
  using namespace selest;

  Rng rng(1234);
  StreetNetworkConfig network;
  const std::vector<Point2> points =
      GenerateStreetNetwork(network, 52120, rng);
  std::printf("street network: %d clusters, %zu endpoints\n\n",
              network.num_clusters, points.size());

  const struct {
    const char* name;
    Axis axis;
    int bits;
  } columns[] = {{"x-coordinate", Axis::kX, 21},
                 {"y-coordinate", Axis::kY, 18}};

  for (const auto& column : columns) {
    const Dataset data =
        MarginalDataset(column.name, points, column.axis, column.bits, 52120);
    std::printf("column %s: p=%d, %zu records, %zu distinct values\n",
                column.name, column.bits, data.size(), data.CountDistinct());

    ProtocolConfig protocol;  // 2,000 samples, 1,000 1%-queries
    protocol.seed = 99;
    const ExperimentSetup setup = MakeSetup(data, protocol);

    TextTable table({"estimator", "mean relative error", "max rel. error"});
    for (EstimatorKind kind :
         {EstimatorKind::kEquiWidth, EstimatorKind::kKernel,
          EstimatorKind::kHybrid, EstimatorKind::kAverageShifted}) {
      EstimatorConfig config;
      config.kind = kind;
      auto report = RunConfig(setup, config);
      if (!report.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", EstimatorKindName(kind),
                     report.status().ToString().c_str());
        return 1;
      }
      table.AddRow({EstimatorKindName(kind),
                    FormatPercent(report->mean_relative_error),
                    FormatPercent(report->max_relative_error)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "rough, clustered marginals violate the smoothness assumption of the\n"
      "pure kernel estimator; the hybrid splits at the detected change\n"
      "points and estimates each piece separately (paper §3.3, Fig. 12).\n");
  return 0;
}
